#include "dataplane/encap.hpp"

#include <gtest/gtest.h>

namespace tango::dataplane {
namespace {

const net::Ipv6Address kHostA = *net::Ipv6Address::parse("2620:110:900a::10");
const net::Ipv6Address kHostB = *net::Ipv6Address::parse("2620:110:901b::10");

TunnelTable two_tunnels() {
  TunnelTable table;
  table.install(Tunnel{.id = 1,
                       .label = "NTT",
                       .local_endpoint = *net::Ipv6Address::parse("2620:110:9001::1"),
                       .remote_endpoint = *net::Ipv6Address::parse("2620:110:9011::1"),
                       .remote_prefix = *net::Ipv6Prefix::parse("2620:110:9011::/48"),
                       .udp_src_port = 49153});
  table.install(Tunnel{.id = 2,
                       .label = "Telia",
                       .local_endpoint = *net::Ipv6Address::parse("2620:110:9002::1"),
                       .remote_endpoint = *net::Ipv6Address::parse("2620:110:9012::1"),
                       .remote_prefix = *net::Ipv6Prefix::parse("2620:110:9012::/48"),
                       .udp_src_port = 49154});
  return table;
}

net::Packet inner_packet() {
  const std::vector<std::uint8_t> payload{9, 8, 7};
  return net::make_udp_packet(kHostA, kHostB, 1111, 2222, payload);
}

TEST(TunnelTable, InstallFindRemove) {
  TunnelTable t = two_tunnels();
  EXPECT_EQ(t.size(), 2u);
  ASSERT_NE(t.find(1), nullptr);
  EXPECT_EQ(t.find(1)->label, "NTT");
  EXPECT_EQ(t.find(99), nullptr);
  EXPECT_EQ(t.ids(), (std::vector<PathId>{1, 2}));
  EXPECT_TRUE(t.remove(1));
  EXPECT_FALSE(t.remove(1));
  EXPECT_EQ(t.size(), 1u);
}

TEST(TunnelSender, WrapsOnChosenTunnelWithSequence) {
  TunnelTable table = two_tunnels();
  sim::NodeClock clock;
  TunnelSender sender{table, clock};

  auto w1 = sender.wrap(inner_packet(), 1, sim::from_ms(5));
  ASSERT_TRUE(w1.has_value());
  auto d1 = net::decapsulate_tango(*w1);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(d1->tango.path_id, 1);
  EXPECT_EQ(d1->tango.sequence, 0u);
  EXPECT_EQ(d1->tango.tx_time_ns, static_cast<std::uint64_t>(sim::from_ms(5)));
  EXPECT_EQ(d1->outer_ip.dst, *net::Ipv6Address::parse("2620:110:9011::1"));
  EXPECT_EQ(d1->udp.src_port, 49153);

  auto w2 = sender.wrap(inner_packet(), 1, sim::from_ms(6));
  auto d2 = net::decapsulate_tango(*w2);
  EXPECT_EQ(d2->tango.sequence, 1u) << "per-tunnel sequence must increment";

  auto w3 = sender.wrap(inner_packet(), 2, sim::from_ms(7));
  auto d3 = net::decapsulate_tango(*w3);
  EXPECT_EQ(d3->tango.sequence, 0u) << "sequences are per-tunnel";
  EXPECT_EQ(d3->udp.src_port, 49154);

  EXPECT_EQ(sender.packets_sent(), 3u);
  EXPECT_EQ(sender.next_sequence(1), 2u);
  EXPECT_EQ(sender.next_sequence(99), 0u);
}

TEST(TunnelSender, UnknownTunnelReturnsNullopt) {
  TunnelTable table = two_tunnels();
  sim::NodeClock clock;
  TunnelSender sender{table, clock};
  EXPECT_FALSE(sender.wrap(inner_packet(), 42, 0).has_value());
  EXPECT_EQ(sender.packets_sent(), 0u);
}

TEST(TunnelReceiver, MeasuresOneWayDelay) {
  TunnelTable table = two_tunnels();
  sim::NodeClock tx_clock;
  sim::NodeClock rx_clock;
  TunnelSender sender{table, tx_clock};
  TunnelReceiver receiver{rx_clock};

  const sim::Time sent_at = sim::from_ms(100);
  const sim::Time arrived_at = sent_at + sim::from_ms(28.4);
  auto wan = sender.wrap(inner_packet(), 1, sent_at);
  auto result = receiver.unwrap(*wan, arrived_at);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->second.path, 1);
  EXPECT_NEAR(result->second.owd_ms, 28.4, 1e-6);
  EXPECT_EQ(result->first, inner_packet());

  const PathTracker* tracker = receiver.tracker(1);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->delay().lifetime().count(), 1u);
  EXPECT_NEAR(tracker->delay().lifetime().mean(), 28.4, 1e-6);
}

TEST(TunnelReceiver, ClockOffsetShiftsAllPathsEqually) {
  // The §3 soundness property: with sender/receiver clocks offset by a
  // constant, measured OWDs are wrong absolutely but exactly comparable
  // across paths.
  TunnelTable table = two_tunnels();
  sim::NodeClock tx_clock{+2 * sim::kMillisecond};
  sim::NodeClock rx_clock{-3 * sim::kMillisecond};
  TunnelSender sender{table, tx_clock};
  TunnelReceiver receiver{rx_clock};

  const double true_owd_1 = 36.9;
  const double true_owd_2 = 32.9;
  auto wan1 = sender.wrap(inner_packet(), 1, 0);
  auto r1 = receiver.unwrap(*wan1, sim::from_ms(true_owd_1));
  auto wan2 = sender.wrap(inner_packet(), 2, 0);
  auto r2 = receiver.unwrap(*wan2, sim::from_ms(true_owd_2));

  const double offset_ms = -5.0;  // rx - tx offset
  EXPECT_NEAR(r1->second.owd_ms, true_owd_1 + offset_ms, 1e-6);
  EXPECT_NEAR(r2->second.owd_ms, true_owd_2 + offset_ms, 1e-6);
  // The relative comparison is exact.
  EXPECT_NEAR(r1->second.owd_ms - r2->second.owd_ms, true_owd_1 - true_owd_2, 1e-6);
}

TEST(TunnelReceiver, NegativeApparentOwdStaysComparable) {
  // Extreme offset makes apparent OWD negative — still fine for relative use.
  TunnelTable table = two_tunnels();
  sim::NodeClock tx_clock{+100 * sim::kMillisecond};
  sim::NodeClock rx_clock{0};
  TunnelSender sender{table, tx_clock};
  TunnelReceiver receiver{rx_clock};

  auto wan = sender.wrap(inner_packet(), 1, 0);
  auto r = receiver.unwrap(*wan, sim::from_ms(28.4));
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->second.owd_ms, 28.4 - 100.0, 1e-6);
}

TEST(TunnelReceiver, RejectsNonTango) {
  sim::NodeClock clock;
  TunnelReceiver receiver{clock};
  EXPECT_FALSE(receiver.unwrap(inner_packet(), 0).has_value());
  EXPECT_EQ(receiver.packets_received(), 0u);
  EXPECT_EQ(receiver.tracker(1), nullptr);
}

}  // namespace
}  // namespace tango::dataplane
