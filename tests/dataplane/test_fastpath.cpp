// Fast-path equivalence: the in-place headroom encap/decap must produce
// wire output byte-identical to the copying reference implementation —
// including authenticated packets and the outer UDP checksum — and the
// zero-copy view + trim must recover the inner packet exactly.
#include <gtest/gtest.h>

#include <random>

#include "dataplane/encap.hpp"
#include "net/checksum.hpp"

namespace tango::dataplane {
namespace {

const net::SipHashKey kKey{.k0 = 0x746f6e6779776f6eull, .k1 = 0x74616e676f746e67ull};

const net::Ipv6Address kHostA = *net::Ipv6Address::parse("2620:110:900a::10");
const net::Ipv6Address kHostB = *net::Ipv6Address::parse("2620:110:901b::10");
const net::Ipv6Address kTunA = *net::Ipv6Address::parse("2620:110:9001::1");
const net::Ipv6Address kTunB = *net::Ipv6Address::parse("2620:110:9011::1");

TunnelTable one_tunnel() {
  TunnelTable table;
  table.install(Tunnel{.id = 1,
                       .label = "NTT",
                       .local_endpoint = kTunA,
                       .remote_endpoint = kTunB,
                       .remote_prefix = *net::Ipv6Prefix::parse("2620:110:9011::/48"),
                       .udp_src_port = 49153});
  return table;
}

net::Packet inner_packet(std::size_t payload_size = 64) {
  std::vector<std::uint8_t> payload(payload_size);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i);
  return net::make_udp_packet(kHostA, kHostB, 1111, 2222, payload);
}

std::vector<std::uint8_t> to_vec(std::span<const std::uint8_t> s) {
  return {s.begin(), s.end()};
}

TEST(FastPath, InplaceEncapMatchesCopyingEncap) {
  const net::TangoHeader hdr{.path_id = 7, .tx_time_ns = 123456789, .sequence = 99};
  for (std::size_t payload : {0u, 1u, 64u, 512u, 1400u}) {
    const net::Packet inner = inner_packet(payload);
    const net::Packet reference = net::encapsulate_tango(inner, kTunA, kTunB, 49153, hdr);
    net::Packet fast = inner;  // copy keeps the headroom
    net::encapsulate_tango_inplace(fast, kTunA, kTunB, 49153, hdr);
    EXPECT_EQ(to_vec(fast.bytes()), to_vec(reference.bytes()))
        << "wire bytes diverge at payload size " << payload;
  }
}

TEST(FastPath, InplaceEncapCorrectWithoutHeadroom) {
  // A packet adopted from raw bytes has no headroom: prepend must take the
  // reallocating slow path and still produce identical wire output.
  const net::TangoHeader hdr{.path_id = 2, .tx_time_ns = 55, .sequence = 3};
  const net::Packet inner = inner_packet();
  net::Packet bare{to_vec(inner.bytes())};
  ASSERT_EQ(bare.headroom(), 0u);
  const net::Packet reference = net::encapsulate_tango(inner, kTunA, kTunB, 49153, hdr);
  net::encapsulate_tango_inplace(bare, kTunA, kTunB, 49153, hdr);
  EXPECT_EQ(to_vec(bare.bytes()), to_vec(reference.bytes()));
  EXPECT_EQ(bare.headroom(), net::Packet::kDefaultHeadroom)
      << "slow path reopens default headroom for the next encapsulation";
}

TEST(FastPath, OuterUdpChecksumValidOnInplaceWire) {
  const net::TangoHeader hdr{.path_id = 1, .tx_time_ns = 42, .sequence = 0};
  net::Packet fast = inner_packet();
  net::encapsulate_tango_inplace(fast, kTunA, kTunB, 49153, hdr);
  const auto udp_segment = fast.bytes().subspan(net::Ipv6Header::kSize);
  EXPECT_TRUE(net::udp6_checksum_ok(kTunA, kTunB, udp_segment));
}

TEST(FastPath, AuthenticatedWrapInplaceMatchesCopyingWrap) {
  TunnelTable table_a = one_tunnel();
  TunnelTable table_b = one_tunnel();
  sim::NodeClock clock;
  TunnelSender copying{table_a, clock, kKey};
  TunnelSender inplace{table_b, clock, kKey};

  for (int i = 0; i < 3; ++i) {  // sequences advance in lockstep
    auto reference = copying.wrap(inner_packet(), 1, sim::from_ms(10 + i));
    ASSERT_TRUE(reference.has_value());
    net::Packet fast = inner_packet();
    ASSERT_TRUE(inplace.wrap_inplace(fast, 1, sim::from_ms(10 + i)));
    EXPECT_EQ(to_vec(fast.bytes()), to_vec(reference->bytes()))
        << "authenticated wire bytes diverge at sequence " << i;
  }
}

TEST(FastPath, ViewMatchesCopyingDecap) {
  const net::TangoHeader hdr{.path_id = 5, .tx_time_ns = 777, .sequence = 13};
  net::Packet wan = inner_packet(128);
  net::encapsulate_tango_inplace(wan, kTunA, kTunB, 49153, hdr);

  const auto copied = net::decapsulate_tango(wan);
  const auto view = net::decapsulate_tango_view(wan);
  ASSERT_TRUE(copied.has_value());
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->outer_ip, copied->outer_ip);
  EXPECT_EQ(view->udp, copied->udp);
  EXPECT_EQ(view->tango, copied->tango);
  EXPECT_EQ(to_vec(view->inner), to_vec(copied->inner.bytes()));
  EXPECT_EQ(view->outer_size + view->inner.size(), wan.size());
}

TEST(FastPath, TrimAfterViewRecoversInnerExactly) {
  const net::TangoHeader hdr{.path_id = 5, .tx_time_ns = 777, .sequence = 13};
  const net::Packet inner = inner_packet(256);
  net::Packet wan = inner;
  net::encapsulate_tango_inplace(wan, kTunA, kTunB, 49153, hdr);
  const auto view = net::decapsulate_tango_view(wan);
  ASSERT_TRUE(view.has_value());
  wan.trim_front(view->outer_size);
  EXPECT_EQ(wan, inner);
  EXPECT_GE(wan.headroom(), net::Packet::kDefaultHeadroom)
      << "trimmed outer headers become headroom for re-encapsulation";
}

TEST(FastPath, UnwrapInplaceMatchesCopyingUnwrap) {
  TunnelTable table = one_tunnel();
  sim::NodeClock clock;
  TunnelSender sender{table, clock, kKey};
  TunnelReceiver copying{clock, /*keep_series=*/false, kKey};
  TunnelReceiver inplace{clock, /*keep_series=*/false, kKey};

  auto wan = sender.wrap(inner_packet(), 1, sim::from_ms(100));
  ASSERT_TRUE(wan.has_value());
  net::Packet wan2 = *wan;

  auto ref = copying.unwrap(*wan, sim::from_ms(130));
  auto info = inplace.unwrap_inplace(wan2, sim::from_ms(130));
  ASSERT_TRUE(ref.has_value());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->path, ref->second.path);
  EXPECT_DOUBLE_EQ(info->owd_ms, ref->second.owd_ms);
  EXPECT_EQ(info->sequence, ref->second.sequence);
  EXPECT_EQ(wan2, ref->first) << "in-place unwrap must leave exactly the inner packet";
}

TEST(FastPath, AuthRejectionLeavesPacketUntouched) {
  TunnelTable table = one_tunnel();
  sim::NodeClock clock;
  TunnelSender sender{table, clock, kKey};
  TunnelReceiver receiver{clock, /*keep_series=*/false, kKey};

  auto wan = sender.wrap(inner_packet(), 1, 0);
  ASSERT_TRUE(wan.has_value());
  net::Packet tampered = *wan;
  // Flip a bit in the Tango sequence field (after IPv6+UDP+magic..), then
  // fix the UDP checksum so only the auth check can catch it.
  const std::size_t seq_off = net::Ipv6Header::kSize + net::UdpHeader::kSize + 16;
  tampered.mutable_bytes()[seq_off + 7] ^= 0x01;
  tampered.mutable_bytes()[net::Ipv6Header::kSize + 6] = 0;
  tampered.mutable_bytes()[net::Ipv6Header::kSize + 7] = 0;
  const std::uint16_t csum = net::udp6_checksum(
      kTunA, kTunB, tampered.bytes().subspan(net::Ipv6Header::kSize));
  tampered.mutable_bytes()[net::Ipv6Header::kSize + 6] = static_cast<std::uint8_t>(csum >> 8);
  tampered.mutable_bytes()[net::Ipv6Header::kSize + 7] = static_cast<std::uint8_t>(csum);

  const auto before = to_vec(tampered.bytes());
  EXPECT_FALSE(receiver.unwrap_inplace(tampered, sim::from_ms(30)).has_value());
  EXPECT_EQ(to_vec(tampered.bytes()), before)
      << "rejected packets must not be mutated (no partial trim)";
  EXPECT_EQ(receiver.auth_failures(), 1u);
}

TEST(TangoHeaderParse, EveryTruncationReturnsNullopt) {
  net::TangoHeader h{.path_id = 9, .tx_time_ns = 1, .sequence = 2};
  h.flags |= net::TangoHeader::kFlagAuthenticated;
  h.auth_tag = 0xDEADBEEF;
  net::ByteWriter w;
  h.serialize(w);
  const auto full = to_vec(w.view());
  ASSERT_EQ(full.size(), h.wire_size());
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> cut{full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len)};
    net::ByteReader r{cut};
    EXPECT_FALSE(net::TangoHeader::parse(r).has_value()) << "accepted truncation at " << len;
  }
  net::ByteReader r{full};
  EXPECT_TRUE(net::TangoHeader::parse(r).has_value());
}

TEST(TangoHeaderParse, GarbageNeverThrowsAndNeedsMagic) {
  std::mt19937_64 rng{1234};
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> junk(40);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    net::ByteReader r{junk};
    std::optional<net::TangoHeader> parsed;
    EXPECT_NO_THROW(parsed = net::TangoHeader::parse(r));
    if (parsed) {
      // Acceptance implies the magic and version bytes were right.
      EXPECT_EQ(junk[0], net::TangoHeader::kMagic >> 8);
      EXPECT_EQ(junk[1], net::TangoHeader::kMagic & 0xFF);
      EXPECT_EQ(junk[2], net::TangoHeader::kVersion);
    }
  }
}

}  // namespace
}  // namespace tango::dataplane
