#include "dataplane/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/wan.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::dataplane {
namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

std::uint32_t le32(const std::vector<std::uint8_t>& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) | (static_cast<std::uint32_t>(b[at + 1]) << 8) |
         (static_cast<std::uint32_t>(b[at + 2]) << 16) |
         (static_cast<std::uint32_t>(b[at + 3]) << 24);
}

TEST(Pcap, FileHeaderIsStandard) {
  const std::string path = ::testing::TempDir() + "/tango_test.pcap";
  {
    PcapWriter w{path};
    w.close();
  }
  const auto bytes = slurp(path);
  ASSERT_EQ(bytes.size(), 24u);
  EXPECT_EQ(le32(bytes, 0), 0xA1B2C3D4u);   // magic, LE
  EXPECT_EQ(bytes[4] | (bytes[5] << 8), 2);  // version major
  EXPECT_EQ(bytes[6] | (bytes[7] << 8), 4);  // version minor
  EXPECT_EQ(le32(bytes, 16), 65535u);        // snaplen
  EXPECT_EQ(le32(bytes, 20), 101u);          // LINKTYPE_RAW
  std::remove(path.c_str());
}

TEST(Pcap, RecordsFramePerPacketWithTimestamps) {
  const std::string path = ::testing::TempDir() + "/tango_records.pcap";
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const net::Packet p = net::make_udp_packet(*net::Ipv6Address::parse("2620:110:900a::1"),
                                             *net::Ipv6Address::parse("2620:110:901b::1"),
                                             1000, 2000, payload);
  {
    PcapWriter w{path};
    w.write(sim::from_seconds(1.5), p);
    w.write(sim::from_seconds(2.25), p);
    EXPECT_EQ(w.packets_written(), 2u);
  }
  const auto bytes = slurp(path);
  const std::size_t rec1 = 24;
  EXPECT_EQ(le32(bytes, rec1 + 0), 1u);        // ts_sec
  EXPECT_EQ(le32(bytes, rec1 + 4), 500000u);   // ts_usec
  EXPECT_EQ(le32(bytes, rec1 + 8), p.size());  // incl_len
  EXPECT_EQ(le32(bytes, rec1 + 12), p.size());
  // Packet bytes follow verbatim (first byte of an IPv6 header: 0x60).
  EXPECT_EQ(bytes[rec1 + 16], 0x60);
  const std::size_t rec2 = rec1 + 16 + p.size();
  EXPECT_EQ(le32(bytes, rec2 + 0), 2u);
  EXPECT_EQ(le32(bytes, rec2 + 4), 250000u);
  ASSERT_EQ(bytes.size(), rec2 + 16 + p.size());
  std::remove(path.c_str());
}

TEST(Pcap, CapturesLiveWanTraffic) {
  // Attach to the WAN's hop observer: every forwarded packet lands in the
  // trace, Tango encapsulation and all.
  topo::VultrScenario s = topo::make_vultr_scenario();
  sim::Wan wan{s.topo, sim::Rng{4}};
  const std::string path = ::testing::TempDir() + "/tango_wan.pcap";
  PcapWriter writer{path};
  wan.set_hop_observer(
      [&writer, &wan](bgp::RouterId from, bgp::RouterId, const net::Packet& p) {
        if (from == topo::vultr::kVultrLa) writer.write(wan.now(), p);
      });

  std::uint64_t delivered = 0;
  wan.attach(topo::vultr::kServerNy, [&delivered](const net::Packet&) { ++delivered; });
  const std::vector<std::uint8_t> payload{7};
  for (int i = 0; i < 5; ++i) {
    wan.send_from(topo::vultr::kServerLa,
                  net::make_udp_packet(s.plan.la_hosts.host(1), s.plan.ny_hosts.host(1), 1, 2,
                                       payload));
  }
  wan.events().run_all();
  writer.close();

  EXPECT_EQ(delivered, 5u);
  EXPECT_EQ(writer.packets_written(), 5u);
  const auto bytes = slurp(path);
  EXPECT_GT(bytes.size(), 24u + 5 * 16u);
  std::remove(path.c_str());
}

TEST(Pcap, UnwritablePathThrows) {
  EXPECT_THROW(PcapWriter{"/nonexistent-dir/x.pcap"}, std::runtime_error);
}

}  // namespace
}  // namespace tango::dataplane
