// TangoSwitch behaviour on the simulated Vultr WAN.
#include "dataplane/switch.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/vultr_scenario.hpp"

namespace tango::dataplane {
namespace {

using namespace topo::vultr;

class SwitchTest : public ::testing::Test {
 protected:
  SwitchTest()
      : s_{topo::make_vultr_scenario()},
        wan_{s_.topo, sim::Rng{99}},
        la_{kServerLa, wan_, SwitchOptions{}},
        ny_{kServerNy, wan_, SwitchOptions{}} {
    // Expose one NY tunnel prefix over the default path and install the
    // matching tunnel at LA.
    s_.topo.bgp().originate(kServerNy, net::Prefix{s_.plan.ny_tunnel[0]});
    wan_.sync_fibs();
    la_.tunnels().install(Tunnel{.id = 1,
                                 .label = "NTT",
                                 .local_endpoint = s_.plan.la_tunnel[0].host(1),
                                 .remote_endpoint = s_.plan.ny_tunnel[0].host(1),
                                 .remote_prefix = s_.plan.ny_tunnel[0],
                                 .udp_src_port = 49153});
    la_.add_peer_prefix(s_.plan.ny_hosts);
    la_.set_active_path(1);
  }

  net::Packet to_peer(std::uint16_t dport = 2000) {
    const std::vector<std::uint8_t> payload{1, 2, 3};
    return net::make_udp_packet(s_.plan.la_hosts.host(1), s_.plan.ny_hosts.host(7), 1000,
                                dport, payload);
  }

  topo::VultrScenario s_;
  sim::Wan wan_;
  TangoSwitch la_;
  TangoSwitch ny_;
};

TEST_F(SwitchTest, PeerTrafficIsEncapsulatedMeasuredAndDelivered) {
  std::vector<net::Packet> delivered;
  std::vector<ReceiveInfo> infos;
  ny_.set_host_handler([&](const net::Packet& p, const std::optional<ReceiveInfo>& info) {
    delivered.push_back(p);
    if (info) infos.push_back(*info);
  });

  const net::Packet p = to_peer();
  la_.send_from_host(p);
  wan_.events().run_all();

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered.front(), p) << "inner packet must arrive byte-identical";
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos.front().path, 1);
  EXPECT_EQ(infos.front().sequence, 0u);
  EXPECT_NEAR(infos.front().owd_ms, 37.1, 1.5);  // NTT toward NY

  const PathTracker* tracker = ny_.receiver().tracker(1);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->delay().lifetime().count(), 1u);
}

TEST_F(SwitchTest, BurstMatchesPerPacketSendsAndCountsMixedFates) {
  // One burst carrying every fate: peer traffic (encapsulated), passthrough,
  // a no-tunnel drop and a malformed packet.  Per-packet outcomes must be
  // identical to sequential send_from_host calls; only the event dispatch is
  // batched.
  std::vector<std::pair<net::Packet, std::optional<ReceiveInfo>>> delivered;
  ny_.set_host_handler([&](const net::Packet& p, const std::optional<ReceiveInfo>& info) {
    delivered.emplace_back(p, info);
  });

  const std::vector<std::uint8_t> payload{5};
  std::vector<net::Packet> burst;
  burst.push_back(to_peer(4000));
  burst.push_back(to_peer(4001));
  burst.push_back(net::make_udp_packet(s_.plan.la_hosts.host(1),
                                       s_.plan.ny_tunnel[0].host(99), 1, 2, payload));
  burst.push_back(net::Packet{std::vector<std::uint8_t>{0xde, 0xad}});  // malformed

  const std::size_t accepted = la_.send_burst(burst);
  wan_.events().run_all();

  EXPECT_EQ(accepted, 3u) << "peer x2 + passthrough enter the WAN; malformed does not";
  ASSERT_EQ(delivered.size(), 3u);
  // Per-link jitter may reorder arrivals, so classify by Tango info rather
  // than arrival index.
  std::vector<ReceiveInfo> tango;
  std::size_t plain = 0;
  for (const auto& [p, info] : delivered) {
    if (info) {
      tango.push_back(*info);
    } else {
      ++plain;
    }
  }
  ASSERT_EQ(tango.size(), 2u) << "both peer packets carry Tango info";
  EXPECT_EQ(plain, 1u) << "passthrough arrives without Tango info";
  std::ranges::sort(tango, {}, &ReceiveInfo::sequence);
  EXPECT_EQ(tango[0].sequence, 0u);
  EXPECT_EQ(tango[1].sequence, 1u) << "burst preserves encapsulation order";
  EXPECT_EQ(la_.passthrough(), 1u);
  EXPECT_EQ(la_.sender().packets_sent(), 2u);

  // Same-timestamp batch: both peer packets left at t=0 and share the path,
  // so their one-way delays match to within link jitter.
  EXPECT_NEAR(tango[0].owd_ms, tango[1].owd_ms, 1.5);
}

TEST_F(SwitchTest, BurstWithNoUsableTunnelCountsDrops) {
  la_.set_active_path(77);  // unknown tunnel: peer traffic has nowhere to go
  std::vector<net::Packet> burst;
  burst.push_back(to_peer());
  burst.push_back(to_peer());
  EXPECT_EQ(la_.send_burst(burst), 0u);
  wan_.events().run_all();
  EXPECT_EQ(la_.no_tunnel_drops(), 2u);
  EXPECT_EQ(wan_.delivered(), 0u);
}

TEST_F(SwitchTest, NonPeerTrafficPassesThrough) {
  // Traffic to a non-Tango destination (the NY tunnel prefix itself is not a
  // peer host prefix) rides plain BGP and is delivered without Tango info.
  std::uint64_t plain = 0;
  ny_.set_host_handler([&](const net::Packet&, const std::optional<ReceiveInfo>& info) {
    if (!info) ++plain;
  });

  const std::vector<std::uint8_t> payload{5};
  net::Packet p = net::make_udp_packet(s_.plan.la_hosts.host(1),
                                       s_.plan.ny_tunnel[0].host(99), 1, 2, payload);
  la_.send_from_host(p);
  wan_.events().run_all();

  EXPECT_EQ(plain, 1u);
  EXPECT_EQ(la_.passthrough(), 1u);
  EXPECT_EQ(la_.sender().packets_sent(), 0u);
}

TEST_F(SwitchTest, NoActivePathDropsAndCounts) {
  TangoSwitch fresh{kServerLa, wan_, SwitchOptions{}};
  // Steal the attachment back for this test switch.
  fresh.add_peer_prefix(s_.plan.ny_hosts);
  fresh.send_from_host(to_peer());
  wan_.events().run_all();
  EXPECT_EQ(fresh.no_tunnel_drops(), 1u);
}

TEST_F(SwitchTest, UnknownActivePathCountsAsNoTunnel) {
  la_.set_active_path(77);
  la_.send_from_host(to_peer());
  wan_.events().run_all();
  EXPECT_EQ(la_.no_tunnel_drops(), 1u);
}

TEST_F(SwitchTest, SelectorOverridesActivePath) {
  // Application-specific routing (§3): the selector steers by inner dport.
  la_.tunnels().install(Tunnel{.id = 2,
                               .label = "Telia",
                               .local_endpoint = s_.plan.la_tunnel[1].host(1),
                               .remote_endpoint = s_.plan.ny_tunnel[1].host(1),
                               .remote_prefix = s_.plan.ny_tunnel[1],
                               .udp_src_port = 49154});
  s_.topo.bgp().originate(kServerNy, net::Prefix{s_.plan.ny_tunnel[1]},
                          bgp::CommunitySet{bgp::action::do_not_announce_to(kAsnNtt)});
  wan_.sync_fibs();

  la_.set_selector([](const net::Packet& inner) -> std::optional<PathId> {
    net::ByteReader r{inner.payload()};
    const auto udp = net::UdpHeader::parse(r);
    if (udp && udp->dst_port == 5555) return PathId{2};  // latency-critical app
    return std::nullopt;                         // default path otherwise
  });

  std::vector<PathId> seen;
  ny_.set_host_handler([&](const net::Packet&, const std::optional<ReceiveInfo>& info) {
    if (info) seen.push_back(info->path);
  });

  la_.send_from_host(to_peer(2000));  // selector declines -> active path 1
  la_.send_from_host(to_peer(5555));  // selector picks path 2
  wan_.events().run_all();

  // Telia (path 2) is faster toward NY, so it arrives first; compare as a set.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<PathId>{1, 2}));
}

TEST_F(SwitchTest, MalformedHostPacketIgnored) {
  la_.send_from_host(net::Packet{std::vector<std::uint8_t>{1, 2}});
  wan_.events().run_all();
  EXPECT_EQ(la_.sender().packets_sent(), 0u);
  EXPECT_EQ(la_.passthrough(), 0u);
}

TEST_F(SwitchTest, ClockOffsetsDoNotBreakRelativeComparison) {
  // Rebuild switches with wildly offset clocks: measured OWDs shift but the
  // by-path ordering at the receiver stays usable (constant offset).
  sim::Wan wan2{s_.topo, sim::Rng{5}};
  TangoSwitch la2{kServerLa, wan2,
                  SwitchOptions{.clock = sim::NodeClock{+50 * sim::kMillisecond}}};
  TangoSwitch ny2{kServerNy, wan2,
                  SwitchOptions{.clock = sim::NodeClock{-20 * sim::kMillisecond}}};
  la2.tunnels().install(*la_.tunnels().find(1));
  la2.add_peer_prefix(s_.plan.ny_hosts);
  la2.set_active_path(1);
  ny2.set_host_handler([](const net::Packet&, const std::optional<ReceiveInfo>&) {});

  for (int i = 0; i < 20; ++i) la2.send_from_host(to_peer());
  wan2.events().run_all();

  const PathTracker* tracker = ny2.receiver().tracker(1);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->delay().lifetime().count(), 20u);
  // Apparent OWD = true OWD + (rx_offset - tx_offset) = ~37.1 - 70.
  EXPECT_NEAR(tracker->delay().lifetime().mean(), 37.1 - 70.0, 2.0);
}

TEST_F(SwitchTest, ActivePathQueriesAreScopedToTheirPeer) {
  // Regression: a single per-peer entry for a *specific* peer must not leak
  // into the no-arg (default-peer) query, and vice versa.
  TangoSwitch sw{kServerLa, wan_, SwitchOptions{}};
  const TangoSwitch::PeerId other_peer = kServerNy;

  sw.set_active_path(other_peer, 7);
  EXPECT_EQ(sw.active_path(other_peer), PathId{7});
  EXPECT_EQ(sw.active_path(), std::nullopt)
      << "an entry for another peer must not answer the default-peer query";
  EXPECT_EQ(sw.active_path(TangoSwitch::kDefaultPeer), std::nullopt);

  // An entry keyed by kDefaultPeer does satisfy the no-arg query.
  sw.set_active_path(TangoSwitch::kDefaultPeer, 3);
  EXPECT_EQ(sw.active_path(), PathId{3});
  EXPECT_EQ(sw.active_path(other_peer), PathId{7});

  // The one-arg setter forces every peer onto the path.
  sw.set_active_path(9);
  EXPECT_EQ(sw.active_path(), PathId{9});
  EXPECT_EQ(sw.active_path(other_peer), PathId{9});
}

}  // namespace
}  // namespace tango::dataplane
