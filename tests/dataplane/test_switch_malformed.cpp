// The switch receive path under malformed WAN input: every bad frame is
// dropped and counted by cause, nothing malformed reaches the hosts, and the
// per-path measurement state stays clean.  The committed fuzz seed corpus is
// replayed through the switch at the end, so every minimized reproducer from
// the decode-hardening pass runs in the ordinary test suite too.
#include "dataplane/switch.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "net/packet.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::dataplane {
namespace {

using namespace topo::vultr;

class SwitchMalformedTest : public ::testing::Test {
 protected:
  SwitchMalformedTest()
      : s_{topo::make_vultr_scenario()},
        wan_{s_.topo, sim::Rng{99}},
        la_{kServerLa, wan_, SwitchOptions{}},
        ny_{kServerNy, wan_, SwitchOptions{}} {
    s_.topo.bgp().originate(kServerNy, net::Prefix{s_.plan.ny_tunnel[0]});
    wan_.sync_fibs();
    la_.tunnels().install(Tunnel{.id = 1,
                                 .label = "NTT",
                                 .local_endpoint = s_.plan.la_tunnel[0].host(1),
                                 .remote_endpoint = s_.plan.ny_tunnel[0].host(1),
                                 .remote_prefix = s_.plan.ny_tunnel[0],
                                 .udp_src_port = 49153});
    la_.add_peer_prefix(s_.plan.ny_hosts);
    la_.set_active_path(1);
    ny_.set_host_handler([this](const net::Packet& p, const std::optional<ReceiveInfo>& info) {
      delivered_.emplace_back(p, info);
    });
  }

  /// A well-formed Tango WAN frame as the fabric would deliver it to NY.
  std::vector<std::uint8_t> wan_frame(bool authenticated = false) {
    const std::vector<std::uint8_t> payload{1, 2, 3};
    const net::Packet inner = net::make_udp_packet(s_.plan.la_hosts.host(1),
                                                   s_.plan.ny_hosts.host(7), 1000, 2000, payload);
    net::TangoHeader th;
    th.path_id = 1;
    th.sequence = 7;
    if (authenticated) {
      th.flags |= net::TangoHeader::kFlagAuthenticated;
      th.auth_tag = 0xABCDABCDABCDABCDull;
    }
    const net::Packet wan = net::encapsulate_tango(inner, s_.plan.la_tunnel[0].host(1),
                                                   s_.plan.ny_tunnel[0].host(1), 49153, th);
    return {wan.bytes().begin(), wan.bytes().end()};
  }

  /// Rewrites the outer payload length and UDP length to match a mutated
  /// buffer and zeroes the UDP checksum, so the decode reaches the Tango
  /// header instead of failing at the envelope checks.
  static void patch_envelope(std::vector<std::uint8_t>& b) {
    const std::size_t seg = b.size() - net::Ipv6Header::kSize;
    b[4] = static_cast<std::uint8_t>(seg >> 8);
    b[5] = static_cast<std::uint8_t>(seg);
    b[net::Ipv6Header::kSize + 4] = static_cast<std::uint8_t>(seg >> 8);
    b[net::Ipv6Header::kSize + 5] = static_cast<std::uint8_t>(seg);
    b[net::Ipv6Header::kSize + 6] = 0;
    b[net::Ipv6Header::kSize + 7] = 0;
  }

  void inject(std::vector<std::uint8_t> bytes) { ny_.inject_wan(net::Packet{std::move(bytes)}); }

  topo::VultrScenario s_;
  sim::Wan wan_;
  TangoSwitch la_;
  TangoSwitch ny_;
  std::vector<std::pair<net::Packet, std::optional<ReceiveInfo>>> delivered_;
};

TEST_F(SwitchMalformedTest, TruncatedOuterHeaderDropsAsMalformedOuter) {
  auto bytes = wan_frame();
  bytes.resize(net::Ipv6Header::kSize - 1);
  inject(std::move(bytes));
  EXPECT_EQ(ny_.malformed_outer_drops(), 1u);
  EXPECT_EQ(ny_.malformed_tango_drops(), 0u);
  EXPECT_TRUE(delivered_.empty()) << "malformed frames must never reach hosts";
}

TEST_F(SwitchMalformedTest, OuterLengthMismatchDropsAsMalformedOuter) {
  auto bytes = wan_frame();
  bytes[4] ^= 0x01;  // outer payload_length no longer matches the buffer
  inject(std::move(bytes));
  EXPECT_EQ(ny_.malformed_outer_drops(), 1u);
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(SwitchMalformedTest, UdpLengthMismatchDropsAsMalformedOuter) {
  auto bytes = wan_frame();
  bytes[net::Ipv6Header::kSize + 4] ^= 0x01;
  inject(std::move(bytes));
  EXPECT_EQ(ny_.malformed_outer_drops(), 1u);
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(SwitchMalformedTest, BadMagicOnTangoPortDropsAsMalformedTango) {
  auto bytes = wan_frame();
  bytes[net::Ipv6Header::kSize + net::UdpHeader::kSize] = 0x00;
  patch_envelope(bytes);
  inject(std::move(bytes));
  EXPECT_EQ(ny_.malformed_tango_drops(), 1u);
  EXPECT_EQ(ny_.malformed_outer_drops(), 0u);
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(SwitchMalformedTest, TruncatedTangoHeaderDropsAsMalformedTango) {
  auto bytes = wan_frame();
  bytes.resize(net::Ipv6Header::kSize + net::UdpHeader::kSize + 10);
  patch_envelope(bytes);
  inject(std::move(bytes));
  EXPECT_EQ(ny_.malformed_tango_drops(), 1u);
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(SwitchMalformedTest, TruncatedAuthTagDropsAsMalformedTango) {
  auto bytes = wan_frame(/*authenticated=*/true);
  bytes.resize(net::Ipv6Header::kSize + net::UdpHeader::kSize + net::TangoHeader::kSize + 4);
  patch_envelope(bytes);
  inject(std::move(bytes));
  EXPECT_EQ(ny_.malformed_tango_drops(), 1u);
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(SwitchMalformedTest, NonTangoTrafficIsStillDeliveredPlain) {
  // A UDP packet to another port is foreign traffic, not a malformed frame.
  const std::vector<std::uint8_t> payload{9};
  const net::Packet p = net::make_udp_packet(s_.plan.la_hosts.host(1),
                                             s_.plan.ny_hosts.host(7), 1000, 2000, payload);
  ny_.inject_wan(p);
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_FALSE(delivered_.front().second.has_value());
  EXPECT_EQ(ny_.malformed_drops(), 0u);
}

TEST_F(SwitchMalformedTest, MalformedFramesDoNotCorruptMeasurementState) {
  // Interleave malformed frames with a real exchange: the per-path tracker
  // must see exactly the clean packets, and the drop counters exactly the
  // garbage.
  for (int i = 0; i < 5; ++i) {
    auto junk = wan_frame();
    junk[4] ^= 0x01;
    inject(std::move(junk));
    auto bad_magic = wan_frame();
    bad_magic[net::Ipv6Header::kSize + net::UdpHeader::kSize] = 0x00;
    patch_envelope(bad_magic);
    inject(std::move(bad_magic));

    const std::vector<std::uint8_t> payload{1, 2, 3};
    la_.send_from_host(net::make_udp_packet(s_.plan.la_hosts.host(1),
                                            s_.plan.ny_hosts.host(7), 1000, 2000, payload));
  }
  wan_.events().run_all();

  EXPECT_EQ(ny_.malformed_outer_drops(), 5u);
  EXPECT_EQ(ny_.malformed_tango_drops(), 5u);
  EXPECT_EQ(ny_.malformed_drops(), 10u);
  ASSERT_EQ(delivered_.size(), 5u);
  for (const auto& [p, info] : delivered_) {
    ASSERT_TRUE(info.has_value()) << "only the clean Tango packets are delivered";
  }
  const PathTracker* tracker = ny_.receiver().tracker(1);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->delay().lifetime().count(), 5u)
      << "malformed frames must not feed the delay tracker";
  EXPECT_EQ(tracker->loss().received(), 5u);
}

#ifdef TANGO_CORPUS_DIR
TEST_F(SwitchMalformedTest, FuzzCorpusReplayLeavesSwitchConsistent) {
  // Every committed seed — valid packets and minimized reproducers alike —
  // goes through the receive path.  The switch must survive all of them and
  // afterwards still run a clean exchange with correct measurement state.
  namespace fs = std::filesystem;
  std::size_t replayed = 0;
  for (const char* sub : {"tango", "ipv6_udp", "ipv4"}) {
    const fs::path dir = fs::path{TANGO_CORPUS_DIR} / sub;
    ASSERT_TRUE(fs::is_directory(dir)) << dir << " missing; run gen_fuzz_corpus";
    for (const auto& entry : fs::directory_iterator(dir)) {
      std::ifstream in{entry.path(), std::ios::binary};
      std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>{in},
                                      std::istreambuf_iterator<char>{}};
      inject(std::move(bytes));
      ++replayed;
    }
  }
  EXPECT_GE(replayed, 16u) << "corpus unexpectedly small";
  // The four tango reproducers all land in a malformed counter.
  EXPECT_GE(ny_.malformed_drops(), 4u);

  const std::size_t delivered_during_replay = delivered_.size();
  const PathTracker* replay_tracker = ny_.receiver().tracker(2);
  const std::uint64_t replay_count =
      replay_tracker != nullptr ? replay_tracker->delay().lifetime().count() : 0;

  // Clean exchange after the replay: byte-identical delivery, tracker counts
  // only the clean packet on its path.
  const std::vector<std::uint8_t> payload{42};
  const net::Packet p = net::make_udp_packet(s_.plan.la_hosts.host(1),
                                             s_.plan.ny_hosts.host(7), 1000, 2000, payload);
  la_.send_from_host(p);
  wan_.events().run_all();
  ASSERT_EQ(delivered_.size(), delivered_during_replay + 1);
  EXPECT_EQ(delivered_.back().first, p);
  ASSERT_TRUE(delivered_.back().second.has_value());
  EXPECT_EQ(delivered_.back().second->path, 1);
  const PathTracker* tracker = ny_.receiver().tracker(1);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->delay().lifetime().count(), 1u);
  if (replay_tracker != nullptr) {
    EXPECT_EQ(replay_tracker->delay().lifetime().count(), replay_count)
        << "the clean exchange must not touch the corpus seeds' path state";
  }
}
#endif

}  // namespace
}  // namespace tango::dataplane
