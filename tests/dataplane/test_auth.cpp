// §6 "trustworthy telemetry": authenticated Tango headers end to end —
// tagging, verification, tamper rejection, and an off-path attacker failing
// to inject forged measurement samples.
#include <gtest/gtest.h>

#include "dataplane/switch.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::dataplane {
namespace {

using namespace topo::vultr;

const net::SipHashKey kKey{.k0 = 0x746f6e6779776f6eull, .k1 = 0x74616e676f746e67ull};
const net::SipHashKey kWrongKey{.k0 = 1, .k1 = 2};

const net::Ipv6Address kHostA = *net::Ipv6Address::parse("2620:110:900a::10");
const net::Ipv6Address kHostB = *net::Ipv6Address::parse("2620:110:901b::10");

TunnelTable one_tunnel() {
  TunnelTable table;
  table.install(Tunnel{.id = 1,
                       .label = "NTT",
                       .local_endpoint = *net::Ipv6Address::parse("2620:110:9001::1"),
                       .remote_endpoint = *net::Ipv6Address::parse("2620:110:9011::1"),
                       .remote_prefix = *net::Ipv6Prefix::parse("2620:110:9011::/48"),
                       .udp_src_port = 49153});
  return table;
}

net::Packet inner_packet() {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  return net::make_udp_packet(kHostA, kHostB, 1000, 2000, payload);
}

TEST(AuthHeader, SerializeParsePreservesTag) {
  net::TangoHeader h;
  h.flags |= net::TangoHeader::kFlagAuthenticated;
  h.auth_tag = 0x1122334455667788ull;
  h.sequence = 5;
  EXPECT_EQ(h.wire_size(), net::TangoHeader::kSize + net::TangoHeader::kAuthTagSize);
  net::ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), h.wire_size());
  net::ByteReader r{w.view()};
  auto parsed = net::TangoHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(AuthHeader, TruncatedTagRejected) {
  net::TangoHeader h;
  h.flags |= net::TangoHeader::kFlagAuthenticated;
  net::ByteWriter w;
  h.serialize(w);
  auto bytes = std::vector<std::uint8_t>{w.view().begin(), w.view().end()};
  bytes.resize(net::TangoHeader::kSize + 4);  // half the tag
  net::ByteReader r{bytes};
  EXPECT_FALSE(net::TangoHeader::parse(r).has_value());
}

TEST(AuthPipeline, TaggedAndVerified) {
  TunnelTable table = one_tunnel();
  sim::NodeClock clock;
  TunnelSender sender{table, clock, kKey};
  TunnelReceiver receiver{clock, false, kKey};

  auto wan = sender.wrap(inner_packet(), 1, sim::from_ms(1));
  ASSERT_TRUE(wan.has_value());
  auto decoded = net::decapsulate_tango(*wan);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->tango.authenticated());
  EXPECT_NE(decoded->tango.auth_tag, 0u);

  auto result = receiver.unwrap(*wan, sim::from_ms(30));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(receiver.auth_failures(), 0u);
  EXPECT_EQ(result->first, inner_packet());
}

TEST(AuthPipeline, WrongKeyRejected) {
  TunnelTable table = one_tunnel();
  sim::NodeClock clock;
  TunnelSender sender{table, clock, kWrongKey};
  TunnelReceiver receiver{clock, false, kKey};

  auto wan = sender.wrap(inner_packet(), 1, 0);
  EXPECT_FALSE(receiver.unwrap(*wan, sim::from_ms(30)).has_value());
  EXPECT_EQ(receiver.auth_failures(), 1u);
  EXPECT_EQ(receiver.tracker(1), nullptr) << "no measurement recorded from a forgery";
}

TEST(AuthPipeline, UnauthenticatedTrafficRejectedWhenKeyRequired) {
  TunnelTable table = one_tunnel();
  sim::NodeClock clock;
  TunnelSender plain_sender{table, clock};  // no key: legacy traffic
  TunnelReceiver receiver{clock, false, kKey};

  auto wan = plain_sender.wrap(inner_packet(), 1, 0);
  EXPECT_FALSE(receiver.unwrap(*wan, sim::from_ms(30)).has_value());
  EXPECT_EQ(receiver.auth_failures(), 1u);
}

TEST(AuthPipeline, TamperedMeasurementFieldsRejected) {
  // An on-path attacker rewrites the timestamp (to skew delay measurements)
  // or the sequence (to fake loss): both must fail verification.
  TunnelTable table = one_tunnel();
  sim::NodeClock clock;
  TunnelSender sender{table, clock, kKey};
  TunnelReceiver receiver{clock, false, kKey};

  auto wan = sender.wrap(inner_packet(), 1, sim::from_ms(1));
  auto decoded = net::decapsulate_tango(*wan);
  ASSERT_TRUE(decoded.has_value());

  auto rebuild_with = [&](net::TangoHeader h) {
    return net::encapsulate_tango(decoded->inner, decoded->outer_ip.src,
                                  decoded->outer_ip.dst, decoded->udp.src_port, h);
  };

  net::TangoHeader skewed = decoded->tango;
  skewed.tx_time_ns += 5'000'000;  // make the path look 5 ms faster
  EXPECT_FALSE(receiver.unwrap(rebuild_with(skewed), sim::from_ms(30)).has_value());

  net::TangoHeader reseq = decoded->tango;
  reseq.sequence += 100;  // fake a burst of loss
  EXPECT_FALSE(receiver.unwrap(rebuild_with(reseq), sim::from_ms(30)).has_value());

  EXPECT_EQ(receiver.auth_failures(), 2u);

  // The untampered original still verifies afterwards.
  EXPECT_TRUE(receiver.unwrap(*wan, sim::from_ms(30)).has_value());
}

TEST(AuthPipeline, OffPathInjectionCannotPolluteMeasurements) {
  // Full-stack: two keyed switches exchange measured traffic while an
  // attacker blasts forged Tango packets at the receiver.  The receiver's
  // trackers must reflect only the genuine stream.
  topo::VultrScenario s = topo::make_vultr_scenario();
  s.topo.bgp().originate(kServerNy, net::Prefix{s.plan.ny_tunnel[0]});
  sim::Wan wan{s.topo, sim::Rng{3}};

  TangoSwitch la{kServerLa, wan, SwitchOptions{.auth_key = kKey}};
  TangoSwitch ny{kServerNy, wan, SwitchOptions{.auth_key = kKey}};
  la.tunnels().install(Tunnel{.id = 1,
                              .label = "NTT",
                              .local_endpoint = s.plan.la_tunnel[0].host(1),
                              .remote_endpoint = s.plan.ny_tunnel[0].host(1),
                              .remote_prefix = s.plan.ny_tunnel[0],
                              .udp_src_port = 49153});
  la.add_peer_prefix(s.plan.ny_hosts);
  la.set_active_path(1);
  ny.set_host_handler([](const net::Packet&, const std::optional<ReceiveInfo>&) {});

  // Genuine stream: 50 packets.
  const net::Packet genuine = inner_packet();
  for (int i = 0; i < 50; ++i) {
    wan.events().schedule_in(i * sim::kMillisecond, [&la, &genuine]() {
      la.send_from_host(genuine);
    });
  }

  // Attacker: 200 forged packets claiming absurdly low delay, sent from a
  // compromised host behind the *Telia* router (off the Tango pair, but
  // able to reach NY's tunnel prefix over plain routing).
  TunnelTable attacker_table;
  attacker_table.install(Tunnel{.id = 1,
                                .label = "forged",
                                .local_endpoint = *net::Ipv6Address::parse("2001:db8::bad"),
                                .remote_endpoint = s.plan.ny_tunnel[0].host(1),
                                .remote_prefix = s.plan.ny_tunnel[0],
                                .udp_src_port = 49153});
  sim::NodeClock attacker_clock{+100 * sim::kMillisecond};  // claims -100 ms delay
  TunnelSender attacker{attacker_table, attacker_clock, kWrongKey};
  for (int i = 0; i < 200; ++i) {
    wan.events().schedule_in(i * sim::kMillisecond, [&wan, &attacker, &genuine]() {
      auto forged = attacker.wrap(genuine, 1, wan.now());
      wan.send_from(kTelia, std::move(*forged));
    });
  }

  wan.events().run_all();

  EXPECT_EQ(ny.receiver().auth_failures(), 200u);
  const PathTracker* tracker = ny.receiver().tracker(1);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->delay().lifetime().count(), 50u)
      << "only the genuine stream is measured";
  EXPECT_GT(tracker->delay().lifetime().min(), 30.0)
      << "no forged negative-delay samples accepted";
  EXPECT_EQ(tracker->loss().lost(), 0u) << "forged sequences created no phantom loss";
}

TEST(AuthTag, CoversVersionAndFlags) {
  // Regression: the tag once omitted the version|flags byte pair, so an
  // on-path attacker could flip a header flag (or bump the version) without
  // invalidating the tag.  Both must now perturb it.
  const net::Packet inner = inner_packet();
  net::TangoHeader h;
  h.flags |= net::TangoHeader::kFlagAuthenticated;
  h.sequence = 7;
  const std::uint64_t base = telemetry_auth_tag(kKey, h, inner);

  auto changed = h;
  changed.flags |= 0x80;
  EXPECT_NE(telemetry_auth_tag(kKey, changed, inner), base);
  changed = h;
  changed.version = h.version + 1;
  EXPECT_NE(telemetry_auth_tag(kKey, changed, inner), base);
}

TEST(AuthPipeline, FlippedFlagBitRejected) {
  // End to end: a verbatim capture with one extra flag bit set carries the
  // original (now wrong) tag and must drop as forged, not as replayed.
  TunnelTable table = one_tunnel();
  sim::NodeClock clock;
  TunnelSender sender{table, clock, kKey};
  TunnelReceiver receiver{clock, false, kKey};

  auto wan = sender.wrap(inner_packet(), 1, sim::from_ms(1));
  auto decoded = net::decapsulate_tango(*wan);
  ASSERT_TRUE(decoded.has_value());
  net::TangoHeader flipped = decoded->tango;
  flipped.flags |= 0x80;
  net::Packet tampered = net::encapsulate_tango(decoded->inner, decoded->outer_ip.src,
                                                decoded->outer_ip.dst, decoded->udp.src_port,
                                                flipped);
  auto result = receiver.unwrap_classified(tampered, sim::from_ms(30));
  EXPECT_EQ(result.status, UnwrapStatus::auth_failed);
  EXPECT_EQ(receiver.auth_failures(), 1u);
  EXPECT_EQ(receiver.replay_dropped(), 0u);
}

TEST(ReplayPipeline, VerbatimCaptureDroppedBeforeTrackers) {
  // A replayed packet is a perfect capture: its tag verifies.  Only the
  // per-path sequence window can reject it — and it must, before the stale
  // tx_time or duplicate sequence reaches any tracker.
  TunnelTable table = one_tunnel();
  sim::NodeClock clock;
  TunnelSender sender{table, clock, kKey};
  TunnelReceiver receiver{clock, false, kKey};

  auto wan = sender.wrap(inner_packet(), 1, sim::from_ms(1));
  net::Packet first = *wan;
  EXPECT_EQ(receiver.unwrap_classified(first, sim::from_ms(30)).status, UnwrapStatus::ok);

  const PathTracker* tracker = receiver.tracker(1);
  ASSERT_NE(tracker, nullptr);
  const std::uint64_t received = tracker->loss().received();
  const double ewma = tracker->delay().ewma().value();

  for (int i = 0; i < 5; ++i) {
    net::Packet replay = *wan;
    EXPECT_EQ(receiver.unwrap_classified(replay, sim::from_ms(200 + i)).status,
              UnwrapStatus::replayed);
  }
  EXPECT_EQ(receiver.replay_dropped(), 5u);
  EXPECT_EQ(receiver.auth_failures(), 0u) << "the capture's tag is genuine";
  EXPECT_EQ(tracker->loss().received(), received) << "replays never reach the loss tracker";
  EXPECT_EQ(tracker->loss().duplicates(), 0u);
  EXPECT_DOUBLE_EQ(tracker->delay().ewma().value(), ewma);
}

TEST(ReplayPipeline, ReplayFloodThroughLiveSwitch) {
  // Full-stack: an attacker records a window of genuine traffic and blasts
  // it back at the receiving switch.  Every copy must land in the replay
  // counters (switch and receiver agree exactly) and host delivery must see
  // each packet once.
  topo::VultrScenario s = topo::make_vultr_scenario();
  s.topo.bgp().originate(kServerNy, net::Prefix{s.plan.ny_tunnel[0]});
  sim::Wan wan{s.topo, sim::Rng{3}};

  TangoSwitch ny{kServerNy, wan, SwitchOptions{.auth_key = kKey}};
  std::uint64_t delivered = 0;
  ny.set_host_handler([&delivered](const net::Packet&, const std::optional<ReceiveInfo>&) {
    ++delivered;
  });

  // The "sender" half of the pairing, keyed correctly (the attacker records
  // its output off the wire; it cannot craft these itself).
  TunnelTable table = one_tunnel();
  sim::NodeClock clock;
  TunnelSender genuine{table, clock, kKey};
  std::vector<net::Packet> captured;
  for (int i = 0; i < 20; ++i) {
    captured.push_back(*genuine.wrap(inner_packet(), 1, sim::from_ms(i)));
  }

  for (const net::Packet& p : captured) ny.inject_wan(p);  // the genuine stream
  ASSERT_EQ(delivered, 20u);
  for (int round = 0; round < 3; ++round) {
    for (const net::Packet& p : captured) ny.inject_wan(p);  // the flood
  }

  EXPECT_EQ(ny.receiver().replay_dropped(), 60u);
  EXPECT_EQ(ny.replay_drops(), 60u) << "switch and receiver accounting must agree";
  EXPECT_EQ(delivered, 20u) << "no replayed copy reaches the hosts";
  const PathTracker* tracker = ny.receiver().tracker(1);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->delay().lifetime().count(), 20u);
  EXPECT_EQ(tracker->loss().duplicates(), 0u);
  EXPECT_EQ(tracker->loss().lost(), 0u);
}

TEST(AuthTag, CoversAllMeasurementFields) {
  const net::Packet inner = inner_packet();
  net::TangoHeader h;
  h.path_id = 1;
  h.tx_time_ns = 1000;
  h.sequence = 7;
  const std::uint64_t base = telemetry_auth_tag(kKey, h, inner);

  auto changed = h;
  changed.path_id = 2;
  EXPECT_NE(telemetry_auth_tag(kKey, changed, inner), base);
  changed = h;
  changed.tx_time_ns = 1001;
  EXPECT_NE(telemetry_auth_tag(kKey, changed, inner), base);
  changed = h;
  changed.sequence = 8;
  EXPECT_NE(telemetry_auth_tag(kKey, changed, inner), base);

  const std::vector<std::uint8_t> other_payload{9, 9, 9};
  const net::Packet other = net::make_udp_packet(kHostA, kHostB, 1000, 2000, other_payload);
  EXPECT_NE(telemetry_auth_tag(kKey, h, other), base);
}

}  // namespace
}  // namespace tango::dataplane
