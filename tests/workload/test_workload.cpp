// Workload layer: sampler statistics and determinism, the app header, the
// generators' pacing/size/class behaviour, the receiver sink's per-class
// accounting, and end-to-end delivery through an established Tango pair.
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/pairing.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::workload {
namespace {

using namespace topo::vultr;

TEST(Samplers, ExponentialMeanAndDeterminism) {
  sim::Rng rng{1};
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += exponential(rng, 5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.2);

  sim::Rng a{9};
  sim::Rng b{9};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(exponential(a, 3.0), exponential(b, 3.0)) << "sample " << i;
  }
}

TEST(Samplers, ParetoFloorAndMean) {
  sim::Rng rng{2};
  const double xm = 4.0;
  const double alpha = 2.5;  // finite variance: the sample mean converges
  double sum = 0.0;
  double lo = 1e9;
  for (int i = 0; i < 50000; ++i) {
    const double x = pareto(rng, xm, alpha);
    sum += x;
    lo = std::min(lo, x);
  }
  EXPECT_GE(lo, xm) << "Pareto support starts at xm";
  EXPECT_NEAR(sum / 50000.0, xm * alpha / (alpha - 1.0), 0.3);
}

TEST(AppHeaderCodec, RoundTripsAndRejectsShortPayloads) {
  std::array<std::uint8_t, 8> buf{};
  AppHeader{.flow_id = 0xDEADBEEF, .seq = 0x01020304}.serialize(buf.data());
  const auto parsed = AppHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flow_id, 0xDEADBEEFu);
  EXPECT_EQ(parsed->seq, 0x01020304u);

  EXPECT_FALSE(AppHeader::parse(std::span<const std::uint8_t>{buf.data(), 7}).has_value());
}

// --- Generator behaviour over the Vultr scenario ------------------------------

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : s_{topo::make_vultr_scenario()},
        wan_{s_.topo, sim::Rng{55}},
        la_{s_.topo, wan_, config(s_, kServerLa)},
        ny_{s_.topo, wan_, config(s_, kServerNy)},
        pairing_{wan_, la_, ny_} {}

  static core::NodeConfig config(const topo::VultrScenario& s, bgp::RouterId router) {
    const bool la = router == kServerLa;
    return core::NodeConfig{
        .router = router,
        .host_prefix = la ? s.plan.la_hosts : s.plan.ny_hosts,
        .tunnel_prefix_pool = la
            ? std::vector<net::Ipv6Prefix>{s.plan.la_tunnel.begin(), s.plan.la_tunnel.end()}
            : std::vector<net::Ipv6Prefix>{s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
        .edge_asns = {kAsnVultr, la ? kAsnServerLa : kAsnServerNy}};
  }

  /// Runs `options` through a fresh generator NY -> LA and returns it.
  TrafficGenerator run_generator(WorkloadOptions options, std::uint64_t seed = 7) {
    TrafficGenerator gen{wan_, ny_, ny_.host_address(2), la_.host_address(2),
                         sim::Rng{seed}, options};
    gen.start();
    wan_.events().run_all();  // flows stop starting at `duration`; all drain
    return gen;
  }

  topo::VultrScenario s_;
  sim::Wan wan_;
  core::TangoNode la_;
  core::TangoNode ny_;
  core::TangoPairing pairing_;
};

TEST_F(WorkloadTest, CbrFixedFlowsArriveOnScheduleWithExactSizes) {
  WorkloadOptions o;
  o.arrivals = Arrivals::cbr;
  o.sizes = Sizes::fixed;
  o.flows_per_sec = 50.0;
  o.mean_flow_packets = 4.0;
  o.packet_spacing = sim::kMillisecond;
  o.duration = 2 * sim::kSecond;
  const TrafficGenerator gen = run_generator(o);

  // CBR: one flow every 20 ms inside [0, 2 s) — deterministically 99.
  EXPECT_GE(gen.flows_started(), 95u);
  EXPECT_LE(gen.flows_started(), 101u);
  EXPECT_EQ(gen.packets_sent(), gen.flows_started() * 4) << "fixed sizes are exact";
  EXPECT_EQ(gen.sensitive_sent(), 0u);
}

TEST_F(WorkloadTest, PoissonArrivalsClusterAroundTheMean) {
  WorkloadOptions o;
  o.arrivals = Arrivals::poisson;
  o.sizes = Sizes::fixed;
  o.flows_per_sec = 100.0;
  o.mean_flow_packets = 2.0;
  o.packet_spacing = 100 * sim::kMicrosecond;
  o.duration = 2 * sim::kSecond;
  const TrafficGenerator gen = run_generator(o);

  EXPECT_GT(gen.flows_started(), 140u);
  EXPECT_LT(gen.flows_started(), 260u);
  EXPECT_EQ(gen.packets_sent(), gen.flows_started() * 2);
}

TEST_F(WorkloadTest, SensitiveFlowsAreThinnedByTheCap) {
  WorkloadOptions o;
  o.sizes = Sizes::pareto;
  o.flows_per_sec = 100.0;
  o.mean_flow_packets = 20.0;
  o.pareto_alpha = 1.3;
  o.packet_spacing = 100 * sim::kMicrosecond;
  o.duration = 2 * sim::kSecond;
  o.sensitive_fraction = 1.0;  // every flow sensitive...
  o.sensitive_max_flow_packets = 3;  // ...and clamped to 3 packets
  const TrafficGenerator gen = run_generator(o);

  EXPECT_GT(gen.flows_started(), 0u);
  EXPECT_EQ(gen.sensitive_sent(), gen.packets_sent());
  EXPECT_LE(gen.packets_sent(), gen.flows_started() * 3);

  // Without the cap the same Pareto tail is far fatter than 3 packets/flow.
  WorkloadOptions fat = o;
  fat.sensitive_fraction = 0.0;
  fat.sensitive_max_flow_packets = 0;
  const TrafficGenerator bulk = run_generator(fat, /*seed=*/8);
  EXPECT_GT(bulk.packets_sent(), bulk.flows_started() * 10)
      << "Pareto mean is ~20 packets/flow";
  EXPECT_EQ(bulk.sensitive_sent(), 0u);
}

TEST_F(WorkloadTest, DiurnalDepthModulatesArrivals) {
  WorkloadOptions flat;
  flat.arrivals = Arrivals::cbr;
  flat.sizes = Sizes::fixed;
  flat.flows_per_sec = 100.0;
  flat.mean_flow_packets = 1.0;
  flat.duration = 2 * sim::kSecond;
  const TrafficGenerator base = run_generator(flat);

  WorkloadOptions diurnal = flat;
  diurnal.diurnal_depth = 0.9;
  diurnal.diurnal_period = 4 * sim::kSecond;  // sin >= 0 for the whole run
  const TrafficGenerator peak = run_generator(diurnal);

  EXPECT_GT(peak.flows_started(), base.flows_started() * 13 / 10)
      << "a 0.9-depth rising half-wave must lift arrivals well above flat";
}

// --- Sink accounting ----------------------------------------------------------

net::Packet app_packet(std::uint16_t dport, std::uint32_t flow, std::uint32_t seq) {
  std::vector<std::uint8_t> payload(16, 0);
  AppHeader{.flow_id = flow, .seq = seq}.serialize(payload.data());
  const auto src = net::Ipv6Address::from_groups({0x2001, 0xdb8, 0, 0, 0, 0, 0, 1});
  const auto dst = net::Ipv6Address::from_groups({0x2001, 0xdb8, 0, 0, 0, 0, 0, 2});
  return net::make_udp_packet(src, dst, 30000, dport, payload);
}

TEST(WorkloadSinkTest, TracksPerClassDuplicatesAndReordering) {
  WorkloadSink sink;
  const dataplane::ReceiveInfo info{.path = 1, .sequence = 0, .owd_ms = 30.0};
  const auto feed = [&](std::uint16_t dport, std::uint32_t seq) {
    sink.on_packet(app_packet(dport, /*flow=*/5, seq), info, sim::kSecond);
  };

  feed(kBulkPort, 0);
  feed(kBulkPort, 1);
  feed(kBulkPort, 3);  // 2 still missing
  feed(kBulkPort, 2);  // late: reorder
  feed(kBulkPort, 2);  // again: duplicate
  feed(kBulkPort, 3);  // high-water duplicate

  EXPECT_EQ(sink.bulk().delivered, 6u);
  EXPECT_EQ(sink.bulk().reordered, 1u);
  EXPECT_EQ(sink.bulk().app_duplicates, 2u);
  EXPECT_EQ(sink.bulk().unique_delivered(), 4u);
  EXPECT_EQ(sink.bulk().owd.summary().count, 6u);

  // The sensitive class accounts separately; unknown ports are ignored.
  sink.on_packet(app_packet(kSensitivePort, 6, 0), info, sim::kSecond);
  sink.on_packet(app_packet(443, 7, 0), info, sim::kSecond);
  EXPECT_EQ(sink.sensitive().delivered, 1u);
  EXPECT_EQ(sink.bulk().delivered, 6u);

  // Tango-unmeasured deliveries (no ReceiveInfo) are not workload traffic.
  sink.on_packet(app_packet(kBulkPort, 5, 0), std::nullopt, sim::kSecond);
  EXPECT_EQ(sink.bulk().delivered, 6u);
}

TEST_F(WorkloadTest, EndToEndDeliveryMatchesGeneratorCounters) {
  pairing_.establish();
  WorkloadSink sink;
  la_.dp().set_host_handler(
      [&sink, this](const net::Packet& inner,
                    const std::optional<dataplane::ReceiveInfo>& info) {
        sink.on_packet(inner, info, wan_.now());
      });

  WorkloadOptions o;
  o.arrivals = Arrivals::poisson;
  o.sizes = Sizes::pareto;
  o.flows_per_sec = 50.0;
  o.mean_flow_packets = 8.0;
  o.max_flow_packets = 64;
  o.packet_spacing = sim::kMillisecond;
  o.duration = 3 * sim::kSecond;
  o.sensitive_fraction = 0.3;
  const TrafficGenerator gen = run_generator(o);

  ASSERT_GT(gen.packets_sent(), 100u);
  // Single active path, ~1e-5 link loss: this seeded run delivers all of it,
  // in order, with the class split the generator chose.
  EXPECT_EQ(sink.total_unique(), gen.packets_sent());
  EXPECT_EQ(sink.sensitive().delivered, gen.sensitive_sent());
  EXPECT_EQ(sink.bulk().delivered, gen.bulk_sent());
  EXPECT_EQ(sink.bulk().reordered + sink.sensitive().reordered, 0u);
  EXPECT_EQ(sink.bulk().app_duplicates + sink.sensitive().app_duplicates, 0u);
  EXPECT_GT(sink.bulk().owd.summary().count, 0u);
}

}  // namespace
}  // namespace tango::workload
