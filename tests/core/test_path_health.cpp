// The sender-side path-health state machine, alone and wired into a full
// pairing under a silent blackhole.
#include "core/path_health.hpp"

#include <gtest/gtest.h>

#include "core/pairing.hpp"
#include "sim/events.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;
using sim::kMillisecond;
using sim::kMinute;
using sim::kSecond;

PathReport report_with(std::uint64_t samples, std::uint64_t lost, sim::Time at) {
  return PathReport{.owd_ewma_ms = 28.0,
                    .jitter_ms = 0.1,
                    .loss_rate = 0.0,
                    .samples = samples,
                    .lost = lost,
                    .updated_at = at};
}

TEST(PathHealthMonitor, FreshPathAgesHealthySuspectQuarantined) {
  PathHealthMonitor m;  // defaults: suspect 300ms, quarantine 1s
  m.track(1, 0);
  EXPECT_EQ(m.state(1), PathHealth::healthy);

  m.tick(200 * kMillisecond);
  EXPECT_EQ(m.state(1), PathHealth::healthy);

  m.tick(400 * kMillisecond);
  EXPECT_EQ(m.state(1), PathHealth::suspect);
  EXPECT_TRUE(m.usable(1)) << "suspect paths stay in the policy's view";

  m.tick(kSecond);
  EXPECT_EQ(m.state(1), PathHealth::quarantined);
  EXPECT_FALSE(m.usable(1));
  EXPECT_EQ(m.quarantines(), 1u);
}

TEST(PathHealthMonitor, AdvancingSamplesAreEvidenceOfLife) {
  PathHealthMonitor m;
  m.track(1, 0);
  std::uint64_t samples = 0;
  for (sim::Time t = 100 * kMillisecond; t <= 10 * kSecond; t += 100 * kMillisecond) {
    m.on_report(1, report_with(samples += 10, 0, t), t);
    m.tick(t);
  }
  EXPECT_EQ(m.state(1), PathHealth::healthy);
  EXPECT_EQ(m.quarantines(), 0u);
}

TEST(PathHealthMonitor, FrozenReportsAreNotEvidence) {
  // The receiver keeps publishing, but its cumulative counters stop moving —
  // the exact signature of a blackholed path.  updated_at looks fresh and
  // must not fool the monitor.
  PathHealthMonitor m;
  m.track(1, 0);
  m.on_report(1, report_with(50, 0, 100 * kMillisecond), 100 * kMillisecond);
  for (sim::Time t = 200 * kMillisecond; t <= 2 * kSecond; t += 100 * kMillisecond) {
    m.on_report(1, report_with(50, 0, t), t);  // frozen at 50 samples
    m.tick(t);
  }
  EXPECT_EQ(m.state(1), PathHealth::quarantined);
}

TEST(PathHealthMonitor, ConfirmedIntervalLossQuarantinesImmediately) {
  PathHealthMonitor m;  // defaults: >=8 packets in the interval, >=50% lost
  m.track(1, 0);
  m.on_report(1, report_with(100, 0, 100 * kMillisecond), 100 * kMillisecond);
  // Next interval: 4 delivered, 12 lost -> 75% of 16 packets.
  m.on_report(1, report_with(104, 12, 200 * kMillisecond), 200 * kMillisecond);
  EXPECT_EQ(m.state(1), PathHealth::quarantined);
  EXPECT_EQ(m.quarantines(), 1u);
}

TEST(PathHealthMonitor, TinyIntervalsAreNotTrustedForLoss) {
  PathHealthMonitor m;
  m.track(1, 0);
  m.on_report(1, report_with(100, 0, 100 * kMillisecond), 100 * kMillisecond);
  // 3 of 6 lost: 50%, but below min_interval_packets -> no verdict.
  m.on_report(1, report_with(103, 3, 200 * kMillisecond), 200 * kMillisecond);
  EXPECT_EQ(m.state(1), PathHealth::healthy);
}

TEST(PathHealthMonitor, QuarantinedPathProbesAtLowRateAndRecovers) {
  PathHealthMonitor m;
  m.track(1, 0);
  m.tick(2 * kSecond);
  ASSERT_EQ(m.state(1), PathHealth::quarantined);

  // should_probe throttles to the recovery interval and records the send.
  EXPECT_TRUE(m.should_probe(1, 2 * kSecond + 600 * kMillisecond));
  EXPECT_EQ(m.state(1), PathHealth::probing);
  EXPECT_FALSE(m.usable(1)) << "a probing path is not yet offered to the policy";
  EXPECT_FALSE(m.should_probe(1, 2 * kSecond + 700 * kMillisecond))
      << "one recovery probe in flight is enough";

  // The probe got through: two good reports recover the path.
  sim::Time t = 2 * kSecond + 800 * kMillisecond;
  m.on_report(1, report_with(1, 0, t), t);
  EXPECT_EQ(m.state(1), PathHealth::probing) << "one good report is not enough";
  m.tick(t + 600 * kMillisecond);  // the policy tick expires the probe window
  EXPECT_TRUE(m.should_probe(1, t + 600 * kMillisecond)) << "probing expired, re-probe";
  t += 700 * kMillisecond;
  m.on_report(1, report_with(2, 0, t), t);
  EXPECT_EQ(m.state(1), PathHealth::recovered);
  EXPECT_TRUE(m.usable(1));
  EXPECT_EQ(m.recoveries(), 1u);

  // The next good report settles it back to healthy.
  m.on_report(1, report_with(3, 0, t + 100 * kMillisecond), t + 100 * kMillisecond);
  EXPECT_EQ(m.state(1), PathHealth::healthy);
}

TEST(PathHealthMonitor, UnansweredProbeFallsBackToQuarantine) {
  PathHealthMonitor m;
  m.track(1, 0);
  m.tick(2 * kSecond);
  ASSERT_TRUE(m.should_probe(1, 3 * kSecond));
  ASSERT_EQ(m.state(1), PathHealth::probing);

  // A probe interval passes with no evidence: back to quarantined so the
  // next low-rate probe can go out.
  m.tick(3 * kSecond + 500 * kMillisecond);
  EXPECT_EQ(m.state(1), PathHealth::quarantined);
  EXPECT_TRUE(m.should_probe(1, 4 * kSecond));
}

TEST(PathHealthMonitor, HealthySidePathsAlwaysProbe) {
  PathHealthMonitor m;
  m.track(1, 0);
  for (sim::Time t = 0; t < 100 * kMillisecond; t += 10 * kMillisecond) {
    EXPECT_TRUE(m.should_probe(1, t)) << "healthy paths keep the 10ms cadence";
  }
  EXPECT_TRUE(m.should_probe(99, 0)) << "untracked ids keep the old behaviour";
  EXPECT_EQ(m.state(99), PathHealth::healthy);
  EXPECT_TRUE(m.usable(99));
}

TEST(PathHealthMonitor, ReTrackRefreshesGraceButKeepsQuarantine) {
  PathHealthMonitor m;
  m.track(1, 0);
  m.tick(2 * kSecond);
  ASSERT_EQ(m.state(1), PathHealth::quarantined);
  m.track(1, 3 * kSecond);
  EXPECT_EQ(m.state(1), PathHealth::quarantined)
      << "re-discovery must not launder a dead path back to healthy";
}

// --- Integration: blackhole failover through a live pairing -----------------

NodeConfig node_config(const topo::VultrScenario& s, bgp::RouterId router) {
  const bool is_la = router == kServerLa;
  return NodeConfig{
      .router = router,
      .host_prefix = is_la ? s.plan.la_hosts : s.plan.ny_hosts,
      .tunnel_prefix_pool =
          is_la ? std::vector<net::Ipv6Prefix>{s.plan.la_tunnel.begin(), s.plan.la_tunnel.end()}
                : std::vector<net::Ipv6Prefix>{s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
      .edge_asns = {kAsnVultr, is_la ? kAsnServerLa : kAsnServerNy}};
}

TEST(PathHealthIntegration, BlackholeFailoverIsBoundedAndRecoverable) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  sim::Wan wan{s.topo, sim::Rng{55}};
  TangoNode la{s.topo, wan, node_config(s, kServerLa)};
  TangoNode ny{s.topo, wan, node_config(s, kServerNy)};
  TangoPairing pairing{wan, la, ny};
  pairing.establish();
  ny.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  pairing.start();
  ny.start_probing(10 * kMillisecond);
  la.start_probing(10 * kMillisecond);

  // Settle on GTT (path 3), the measured-best.
  wan.events().run_until(3 * kSecond);
  ASSERT_EQ(ny.dp().active_path(kServerLa), PathId{3});

  // GTT's backbone link to LA silently blackholes at t=3s for 10s.  No
  // withdraw, no reconvergence — only the frozen telemetry gives it away.
  sim::inject(wan, sim::BlackholeEvent{.link = topo::VultrScenario::backbone_to_la(kAsnGtt),
                                       .at = 3 * kSecond,
                                       .duration = 10 * kSecond});

  // Bounded failover: quarantine_after (1s) + a feedback round trip + a
  // policy period.  By t=5s the switch must have left the dead path.
  wan.events().run_until(5 * kSecond);
  EXPECT_NE(ny.dp().active_path(kServerLa), PathId{3})
      << "the switch may not stay pinned to a blackholed tunnel";
  EXPECT_FALSE(ny.health().usable(3));
  EXPECT_GE(ny.health().quarantines(), 1u);

  // While quarantined, path 3 is probed at the low recovery rate, so when
  // the blackhole lifts at t=13s the evidence returns and the path recovers;
  // the policy then walks back to the best path.
  wan.events().run_until(25 * kSecond);
  EXPECT_TRUE(ny.health().usable(3));
  EXPECT_GE(ny.health().recoveries(), 1u);
  EXPECT_EQ(ny.dp().active_path(kServerLa), PathId{3})
      << "delivery and preference must return after the fault clears";

  pairing.stop();
  ny.stop_probing();
  la.stop_probing();
  wan.events().run_all();
}

TEST(PathHealthIntegration, QuarantineSuppressesProbeTraffic) {
  // A dead path must not keep consuming the 10ms probe cadence: once
  // quarantined it costs at most one probe per probe_interval.
  topo::VultrScenario s = topo::make_vultr_scenario();
  sim::Wan wan{s.topo, sim::Rng{56}};
  TangoNode la{s.topo, wan, node_config(s, kServerLa)};
  TangoNode ny{s.topo, wan, node_config(s, kServerNy)};
  TangoPairing pairing{wan, la, ny};
  pairing.establish();
  ny.set_policy(std::make_unique<LowestDelayPolicy>());
  pairing.start();
  ny.start_probing(10 * kMillisecond);

  wan.events().run_until(2 * kSecond);
  const std::uint64_t before = ny.probes_sent();

  sim::inject(wan, sim::BlackholeEvent{.link = topo::VultrScenario::backbone_to_la(kAsnGtt),
                                       .at = 2 * kSecond,
                                       .duration = kMinute});
  wan.events().run_until(12 * kSecond);
  const std::uint64_t during = ny.probes_sent() - before;

  // 10s at 10ms over 4 paths would be ~4000 probes; with path 3 quarantined
  // after ~1s it degrades to ~3 probes/round + ~2 recovery probes/second.
  EXPECT_LT(during, 3400u) << "quarantine must shed the dead path's probe load";
  EXPECT_GT(during, 2900u) << "the three healthy paths keep their cadence";

  pairing.stop();
  ny.stop_probing();
  wan.events().run_all();
}

}  // namespace
}  // namespace tango::core
