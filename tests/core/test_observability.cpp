// End-to-end observability: one registry + tracer wired through the WAN and
// both nodes must agree with the components' own counters, capture whole
// packet lifecycles, and export a coherent snapshot.
#include <gtest/gtest.h>

#include "core/pairing.hpp"
#include "telemetry/export.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

class ObservabilityTest : public ::testing::Test {
 protected:
  ObservabilityTest()
      : s_{topo::make_vultr_scenario()},
        wan_{s_.topo, sim::Rng{99}},
        la_{s_.topo, wan_, node_config(s_, kServerLa, "la")},
        ny_{s_.topo, wan_, node_config(s_, kServerNy, "ny")},
        pairing_{wan_, la_, ny_} {
    wan_.wire_observability({.metrics = &registry_, .tracer = &tracer_});
    pairing_.establish();
  }

  NodeConfig node_config(const topo::VultrScenario& s, bgp::RouterId router,
                         std::string name) {
    const bool is_la = router == kServerLa;
    return NodeConfig{
        .router = router,
        .host_prefix = is_la ? s.plan.la_hosts : s.plan.ny_hosts,
        .tunnel_prefix_pool = is_la
                                  ? std::vector<net::Ipv6Prefix>{s.plan.la_tunnel.begin(),
                                                                 s.plan.la_tunnel.end()}
                                  : std::vector<net::Ipv6Prefix>{s.plan.ny_tunnel.begin(),
                                                                 s.plan.ny_tunnel.end()},
        .edge_asns = {kAsnVultr, is_la ? kAsnServerLa : kAsnServerNy},
        .name = std::move(name),
        .obs = {.metrics = &registry_, .tracer = &tracer_}};
  }

  /// The counter registered under (name, labels), or nullptr.
  [[nodiscard]] const telemetry::Counter* find_counter(const std::string& name,
                                                       const telemetry::Labels& labels) const {
    for (const telemetry::MetricEntry& e : registry_.entries()) {
      if (e.kind == telemetry::MetricKind::counter && e.name == name && e.labels == labels) {
        return e.counter;
      }
    }
    return nullptr;
  }

  void run_traffic(int packets) {
    const std::vector<std::uint8_t> payload{0xAB, 0xCD};
    for (int i = 0; i < packets; ++i) {
      la_.dp().send_from_host(net::make_udp_packet(la_.host_address(1),
                                                   ny_.host_address(2), 4000, 5000, payload));
    }
    wan_.events().run_all();
  }

  telemetry::MetricsRegistry registry_;
  telemetry::PacketTracer tracer_;
  topo::VultrScenario s_;
  sim::Wan wan_;
  TangoNode la_;
  TangoNode ny_;
  TangoPairing pairing_;
};

TEST_F(ObservabilityTest, CountersMirrorComponentStatistics) {
  tracer_.enable_all();
  run_traffic(64);

  const auto* encap = find_counter("tango_switch_encap_total", {{"node", "la"}});
  const auto* decap = find_counter("tango_switch_decap_total", {{"node", "ny"}});
  const auto* delivered = find_counter("tango_wan_delivered_total", {});
  ASSERT_NE(encap, nullptr);
  ASSERT_NE(decap, nullptr);
  ASSERT_NE(delivered, nullptr);
  EXPECT_EQ(encap->value(), la_.dp().sender().packets_sent());
  EXPECT_EQ(decap->value(), ny_.dp().receiver().packets_received());
  EXPECT_EQ(delivered->value(), wan_.delivered());
  EXPECT_GT(delivered->value(), 0u);

  // Drop causes mirror the WAN's per-reason array (all zero in a calm run,
  // but registered and wired either way).
  for (const auto reason : {sim::DropReason::no_route, sim::DropReason::link_loss,
                            sim::DropReason::hop_limit, sim::DropReason::no_handler,
                            sim::DropReason::malformed}) {
    const auto* c = find_counter("tango_wan_drops_total", {{"cause", to_string(reason)}});
    ASSERT_NE(c, nullptr) << to_string(reason);
    EXPECT_EQ(c->value(), wan_.dropped(reason)) << to_string(reason);
  }

  // Scheduler instrumentation saw the run.
  const auto* executed = find_counter("tango_sched_executed_total", {});
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(executed->value(), wan_.events().executed());
}

TEST_F(ObservabilityTest, PerPathDelayHistogramsRegisterLazily) {
  run_traffic(32);
  bool found = false;
  for (const telemetry::MetricEntry& e : registry_.entries()) {
    if (e.name != "tango_path_owd_us" || e.kind != telemetry::MetricKind::histogram) continue;
    found = true;
    EXPECT_GT(e.histogram->count(), 0u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObservabilityTest, TracerCapturesWholeLifecycles) {
  tracer_.enable_all();
  run_traffic(4);

  bool saw_route_select = false;
  bool saw_encap = false;
  bool saw_enqueue = false;
  bool saw_deliver = false;
  bool saw_decap = false;
  for (const telemetry::TraceEvent& e : tracer_.events()) {
    switch (e.stage) {
      case telemetry::TraceStage::route_select:
        saw_route_select = true;
        EXPECT_EQ(e.cause, telemetry::TraceCause::active_path);
        EXPECT_EQ(e.node, kServerLa);
        break;
      case telemetry::TraceStage::encap:
        saw_encap = true;
        break;
      case telemetry::TraceStage::wan_enqueue:
        saw_enqueue = true;
        break;
      case telemetry::TraceStage::deliver:
        saw_deliver = true;
        break;
      case telemetry::TraceStage::decap:
        saw_decap = true;
        EXPECT_EQ(e.node, kServerNy);
        EXPECT_GT(e.path, 0u);
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_route_select);
  EXPECT_TRUE(saw_encap);
  EXPECT_TRUE(saw_enqueue);
  EXPECT_TRUE(saw_deliver);
  EXPECT_TRUE(saw_decap);
}

TEST_F(ObservabilityTest, LinkLossDropsAreCountedAndTraced) {
  tracer_.enable_all();
  wan_.link(kServerLa, kVultrLa).set_down(true);
  run_traffic(8);
  wan_.link(kServerLa, kVultrLa).set_down(false);

  const auto* drops = find_counter("tango_wan_drops_total", {{"cause", "link-loss"}});
  ASSERT_NE(drops, nullptr);
  EXPECT_EQ(drops->value(), wan_.dropped(sim::DropReason::link_loss));
  EXPECT_GT(drops->value(), 0u);

  bool saw_drop = false;
  for (const telemetry::TraceEvent& e : tracer_.events()) {
    if (e.stage == telemetry::TraceStage::drop &&
        e.cause == telemetry::TraceCause::link_loss) {
      saw_drop = true;
    }
  }
  EXPECT_TRUE(saw_drop);

  // The downed link's own counter advanced too.
  const telemetry::Labels labels{{"from", std::to_string(kServerLa)},
                                 {"to", std::to_string(kVultrLa)}};
  const auto* link_drops = find_counter("tango_link_drops_total", labels);
  ASSERT_NE(link_drops, nullptr);
  EXPECT_EQ(link_drops->value(), wan_.link(kServerLa, kVultrLa).drops());
}

TEST_F(ObservabilityTest, HealthTransitionsFeedStateCounters) {
  // Starve every path of evidence and tick past the quarantine threshold.
  la_.set_policy(std::make_unique<LowestDelayPolicy>());
  la_.apply_policy(10 * sim::kSecond);

  const auto* quarantined =
      find_counter("tango_health_transitions_total", {{"node", "la"}, {"to", "quarantined"}});
  const auto* suspect =
      find_counter("tango_health_transitions_total", {{"node", "la"}, {"to", "suspect"}});
  ASSERT_NE(quarantined, nullptr);
  ASSERT_NE(suspect, nullptr);
  EXPECT_EQ(quarantined->value(), la_.health().quarantines());
  EXPECT_GT(quarantined->value(), 0u);
}

TEST_F(ObservabilityTest, SnapshotExportsAreCoherent) {
  run_traffic(16);
  const std::string prom = telemetry::to_prometheus(registry_);
  EXPECT_NE(prom.find("tango_wan_delivered_total"), std::string::npos);
  EXPECT_NE(prom.find("tango_switch_encap_total{node=\"la\"}"), std::string::npos);
  EXPECT_NE(prom.find("tango_path_owd_us_bucket"), std::string::npos);
  const std::string json = telemetry::to_json(registry_);
  EXPECT_NE(json.find("\"tango_sched_executed_total\""), std::string::npos);
}

}  // namespace
}  // namespace tango::core
