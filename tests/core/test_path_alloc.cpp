// PathIdAllocator: the collision-checked replacement for the old fixed
// 16-ids-per-ordered-pair scheme, which wrapped the 16-bit id space at 65
// mesh sites.
#include "core/path_alloc.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tango::core {
namespace {

TEST(PathIdAllocator, CompactMonotonicBlocks) {
  PathIdAllocator alloc;
  EXPECT_EQ(alloc.reserve(4), 1u);
  EXPECT_EQ(alloc.reserve(1), 5u);
  EXPECT_EQ(alloc.next(), 6u);
  EXPECT_EQ(alloc.reserve(10), 7u);
  EXPECT_EQ(alloc.allocated(), 16u);
  EXPECT_EQ(alloc.remaining(), 65535u - 16u);
}

TEST(PathIdAllocator, BlocksNeverOverlap) {
  PathIdAllocator alloc;
  std::set<PathId> seen;
  for (int block = 0; block < 100; ++block) {
    const std::size_t count = 1 + static_cast<std::size_t>(block % 7);
    const PathId first = alloc.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(seen.insert(static_cast<PathId>(first + i)).second)
          << "id " << (first + i) << " handed out twice";
    }
  }
  EXPECT_EQ(seen.size(), alloc.allocated());
}

TEST(PathIdAllocator, ExhaustionThrowsInsteadOfWrapping) {
  PathIdAllocator alloc{/*max_id=*/10};
  EXPECT_EQ(alloc.reserve(10), 1u);
  EXPECT_EQ(alloc.remaining(), 0u);
  EXPECT_THROW(alloc.next(), PathIdExhausted);
  // A partial fit must also refuse (no split blocks).
  PathIdAllocator alloc2{/*max_id=*/10};
  alloc2.reserve(8);
  EXPECT_THROW(alloc2.reserve(3), PathIdExhausted);
  EXPECT_EQ(alloc2.reserve(2), 9u);  // exact fit still succeeds
}

TEST(PathIdAllocator, EmptyReservationIsACallerBug) {
  PathIdAllocator alloc;
  EXPECT_THROW(alloc.reserve(0), std::logic_error);
}

TEST(PathIdAllocator, FullSixteenBitSpaceIsAddressable) {
  PathIdAllocator alloc;
  const PathId first = alloc.reserve(65535);  // ids 1..65535 (0 = "no path")
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(alloc.remaining(), 0u);
  EXPECT_THROW(alloc.next(), PathIdExhausted);
}

// Regression for the old TangoMesh scheme: `ordered_pair * 16 + 1` cast to
// a 16-bit PathId.  At >= 65 sites (>= 4096 ordered pairs) the multiply
// exceeds 65535 and the cast silently wraps — pair 4096 gets first id 1
// again, colliding with pair 0's range.  The allocator makes the same
// demand fail loudly instead.
TEST(PathIdAllocator, RegressionOldStrideSchemeWrappedAt65Sites) {
  constexpr std::size_t kIdsPerPair = 16;
  constexpr std::size_t kSites = 65;
  constexpr std::size_t kPairs = kSites * (kSites - 1);  // 4160 ordered pairs
  // The old arithmetic, verbatim: silent wraparound, no error.
  const auto old_first_id = [](std::size_t ordered_pair) {
    return static_cast<PathId>(ordered_pair * kIdsPerPair + 1);
  };
  EXPECT_EQ(old_first_id(0), old_first_id(4096)) << "old scheme reused pair 0's ids";

  // The allocator serving the same per-pair demand refuses past the edge.
  PathIdAllocator alloc;
  bool threw = false;
  std::size_t pairs_served = 0;
  try {
    for (std::size_t pair = 0; pair < kPairs; ++pair) {
      (void)alloc.reserve(kIdsPerPair);
      ++pairs_served;
    }
  } catch (const PathIdExhausted&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(pairs_served, 65535u / kIdsPerPair);  // 4095 full blocks fit
}

}  // namespace
}  // namespace tango::core
