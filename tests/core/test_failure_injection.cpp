// Failure injection across the full stack: withdrawn prefixes mid-flight,
// session flaps with re-discovery, bursty loss seen by the trackers and
// acted on by a loss-aware policy.
#include <gtest/gtest.h>

#include "core/pairing.hpp"
#include "sim/events.hpp"
#include "sim/loss_model.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

NodeConfig node_config(const topo::VultrScenario& s, bgp::RouterId router) {
  const bool is_la = router == kServerLa;
  return NodeConfig{
      .router = router,
      .host_prefix = is_la ? s.plan.la_hosts : s.plan.ny_hosts,
      .tunnel_prefix_pool =
          is_la ? std::vector<net::Ipv6Prefix>{s.plan.la_tunnel.begin(), s.plan.la_tunnel.end()}
                : std::vector<net::Ipv6Prefix>{s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
      .edge_asns = {kAsnVultr, is_la ? kAsnServerLa : kAsnServerNy},
      .keep_series = true};
}

class FailureTest : public ::testing::Test {
 protected:
  FailureTest()
      : s_{topo::make_vultr_scenario()},
        wan_{s_.topo, sim::Rng{55}},
        la_{s_.topo, wan_, node_config(s_, kServerLa)},
        ny_{s_.topo, wan_, node_config(s_, kServerNy)},
        pairing_{wan_, la_, ny_} {
    pairing_.establish();
  }

  topo::VultrScenario s_;
  sim::Wan wan_;
  TangoNode la_;
  TangoNode ny_;
  TangoPairing pairing_;
};

TEST_F(FailureTest, WithdrawnTunnelPrefixBlackholesOnlyThatPath) {
  // NY withdraws the prefix naming its GTT path (path 3 of LA's outbound):
  // packets already steered onto it have no route, other paths unaffected.
  const DiscoveredPath* gtt = la_.registry().find(3);
  ASSERT_NE(gtt, nullptr);
  s_.topo.bgp().withdraw(kServerNy, net::Prefix{gtt->prefix});
  wan_.sync_fibs();

  std::uint64_t delivered = 0;
  ny_.dp().set_host_handler(
      [&delivered](const net::Packet&, const std::optional<dataplane::ReceiveInfo>&) {
        ++delivered;
      });

  const std::vector<std::uint8_t> payload{1};
  const net::Packet p = net::make_udp_packet(la_.host_address(1), ny_.host_address(1), 1, 2,
                                             payload);
  la_.dp().set_active_path(3);
  la_.dp().send_from_host(p);
  wan_.events().run_all();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(wan_.dropped(sim::DropReason::no_route), 1u);

  la_.dp().set_active_path(1);
  la_.dp().send_from_host(p);
  wan_.events().run_all();
  EXPECT_EQ(delivered, 1u) << "other paths keep working";
}

TEST_F(FailureTest, SessionFlapHealsAfterRediscovery) {
  // Vultr NY loses its GTT transit session entirely.
  s_.topo.bgp().remove_session(kGtt, kVultrNy);
  wan_.sync_fibs();

  // Re-run discovery: only three paths remain toward NY.
  DiscoveryResult after = la_.discover_outbound(ny_);
  ASSERT_EQ(after.paths.size(), 3u);
  EXPECT_EQ(after.paths[0].label, "NTT");
  EXPECT_EQ(after.paths[1].label, "Telia");
  EXPECT_EQ(after.paths[2].label, "NTT Cogent");

  // Session returns; discovery finds all four again.
  s_.topo.bgp().add_transit(kGtt, kVultrNy, 110);
  wan_.sync_fibs();
  DiscoveryResult healed = la_.discover_outbound(ny_);
  EXPECT_EQ(healed.paths.size(), 4u);
}

TEST_F(FailureTest, TrackersSeeInjectedLossAndReordering) {
  // Make the GTT backbone lossy, then push a steady stream over it.
  s_.topo.set_profile(kGtt, kVultrLa,
                      topo::LinkProfile{.base_delay_ms = 27.5,
                                        .jitter = topo::JitterKind::none,
                                        .loss_rate = 0.10});
  sim::Wan lossy_wan{s_.topo, sim::Rng{7}};
  TangoNode la2{s_.topo, lossy_wan, node_config(s_, kServerLa)};
  TangoNode ny2{s_.topo, lossy_wan, node_config(s_, kServerNy)};
  TangoPairing pairing2{lossy_wan, la2, ny2};
  pairing2.establish();

  ny2.dp().set_active_path(3);  // NY->LA via the lossy GTT edge
  const std::vector<std::uint8_t> payload{9};
  for (int i = 0; i < 3000; ++i) {
    lossy_wan.events().schedule_in(i * sim::kMillisecond, [&ny2, &la2, &payload]() {
      ny2.dp().send_from_host(net::make_udp_packet(ny2.host_address(1), la2.host_address(1),
                                                   5, 6, payload));
    });
  }
  lossy_wan.events().run_all();

  const dataplane::PathTracker* tracker = la2.dp().receiver().tracker(3);
  ASSERT_NE(tracker, nullptr);
  const double measured = tracker->loss().loss_rate();
  EXPECT_NEAR(measured, 0.10, 0.025) << "sequence-based loss must track injected loss";
  // One-way delay stats unaffected by the loss.
  EXPECT_NEAR(tracker->delay().lifetime().mean(), 28.4 + 0.0, 1.0);
}

TEST_F(FailureTest, LossAwarePolicyAbandonsLossyPath) {
  // Start healthy, then GTT turns 20% lossy at t=3s (burst loss).  A
  // loss-weighted policy must leave GTT; a pure delay policy would stay.
  ny_.set_policy(std::make_unique<WeightedScorePolicy>(
      WeightedScorePolicy::Weights{.delay = 1.0, .jitter = 0.0, .loss = 500.0}));
  pairing_.start();
  ny_.start_probing(10 * sim::kMillisecond);
  la_.start_probing(10 * sim::kMillisecond);

  wan_.events().run_until(3 * sim::kSecond);
  ASSERT_EQ(ny_.dp().active_path(kServerLa), PathId{3}) << "settled on GTT while healthy";

  // GTT turns 20% bursty-lossy from t=3s.
  wan_.link(kGtt, kVultrLa)
      .set_loss(std::make_unique<sim::GilbertElliottLoss>(0.05, 0.2, 0.02, 0.8));

  wan_.events().run_until(20 * sim::kSecond);
  EXPECT_NE(ny_.dp().active_path(kServerLa), PathId{3})
      << "loss-weighted policy must abandon the lossy path";

  pairing_.stop();
  ny_.stop_probing();
  la_.stop_probing();
  wan_.events().run_all();
}

TEST_F(FailureTest, FeedbackLoopToleratesLossyControlChannel) {
  // Reports ride the same unreliable world; the loop must keep converging
  // even when many probe packets die.  10% loss on every backbone edge.
  for (bgp::Asn asn : {kAsnNtt, kAsnTelia, kAsnGtt}) {
    const topo::LinkKey key = topo::VultrScenario::backbone_to_la(asn);
    topo::LinkProfile profile = *s_.topo.profile(key.from, key.to);
    profile.loss_rate = 0.10;
    s_.topo.set_profile(key.from, key.to, profile);
  }
  sim::Wan wan2{s_.topo, sim::Rng{77}};
  TangoNode la2{s_.topo, wan2, node_config(s_, kServerLa)};
  TangoNode ny2{s_.topo, wan2, node_config(s_, kServerNy)};
  TangoPairing pairing2{wan2, la2, ny2};
  pairing2.establish();
  ny2.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  pairing2.start();
  ny2.start_probing(10 * sim::kMillisecond);
  wan2.events().run_until(5 * sim::kSecond);
  pairing2.stop();
  ny2.stop_probing();
  wan2.events().run_all();

  EXPECT_EQ(ny2.dp().active_path(kServerLa), PathId{3})
      << "policy still converges on GTT through 10% loss";
  const PathReport* r = ny2.registry().report(3);
  ASSERT_NE(r, nullptr);
  EXPECT_GT(r->loss_rate, 0.05) << "and the loss itself is visible in the reports";
}

}  // namespace
}  // namespace tango::core
