#include "core/bird.hpp"

#include <gtest/gtest.h>

#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

TEST(BirdConfig, RendersDiscoveredStateDeployably) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  DiscoveryResult r = discover_paths(
      s.topo, DiscoveryRequest{
                  .destination = kServerNy,
                  .source = kServerLa,
                  .prefix_pool = {s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
                  .edge_asns = {kAsnVultr, kAsnServerLa, kAsnServerNy}});
  ASSERT_EQ(r.paths.size(), 4u);

  // The NY server must announce these prefixes: render ITS bird.conf.
  NodeConfig ny{.router = kServerNy,
                .host_prefix = s.plan.ny_hosts,
                .tunnel_prefix_pool = {s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
                .edge_asns = {kAsnVultr, kAsnServerNy}};
  BirdConfigOptions opts{.local_asn = 64513, .provider_asn = 20473,
                         .neighbor_address = "2001:19f0:ffff::1",
                         .router_id = "10.0.0.2"};
  const std::string conf = render_bird_config(ny, r.paths, opts);

  // Session setup.
  EXPECT_NE(conf.find("router id 10.0.0.2;"), std::string::npos);
  EXPECT_NE(conf.find("local :: as 64513;"), std::string::npos);
  EXPECT_NE(conf.find("neighbor 2001:19f0:ffff::1 as 20473;"), std::string::npos);
  EXPECT_NE(conf.find("multihop 2;"), std::string::npos);

  // Every announced prefix appears as a static route and in the filter.
  EXPECT_NE(conf.find("route 2620:110:901b::/48 unreachable;"), std::string::npos);
  for (const DiscoveredPath& p : r.paths) {
    EXPECT_NE(conf.find("route " + p.prefix.to_string() + " unreachable;"),
              std::string::npos)
        << p.to_string();
    EXPECT_NE(conf.find("if net = " + p.prefix.to_string()), std::string::npos);
  }

  // Community pinning in BIRD syntax: path 2 (Telia) suppresses NTT.
  EXPECT_NE(conf.find("bgp_community.add((64600,2914));"), std::string::npos);
  // Path 4 carries all three suppressions.
  EXPECT_NE(conf.find("bgp_community.add((64600,3257));"), std::string::npos);

  // The default-path prefix gets no community line between its "if net" and
  // its "accept" (checked coarsely: its block is exactly 4 lines).
  const auto pos = conf.find("if net = " + r.paths[0].prefix.to_string());
  ASSERT_NE(pos, std::string::npos);
  const auto accept = conf.find("accept;", pos);
  EXPECT_EQ(conf.substr(pos, accept - pos).find("bgp_community"), std::string::npos);

  // Export filter ends closed.
  EXPECT_NE(conf.find("export filter tango_export;"), std::string::npos);
}

TEST(BirdConfig, LabelsSanitizedIntoIdentifiers) {
  NodeConfig node{.host_prefix = *net::Ipv6Prefix::parse("2620:110:901b::/48")};
  DiscoveredPath path{.id = 4,
                      .prefix = *net::Ipv6Prefix::parse("2620:110:9014::/48"),
                      .communities = {},
                      .as_path = bgp::AsPath{20473, 2914, 174, 20473},
                      .label = "NTT Cogent"};
  const std::string conf = render_bird_config(node, {path}, BirdConfigOptions{});
  EXPECT_NE(conf.find("# ntt_cogent:"), std::string::npos);
}

TEST(BirdConfig, EmptyAnnouncementsStillValid) {
  NodeConfig node{.host_prefix = *net::Ipv6Prefix::parse("2620:110:901b::/48")};
  const std::string conf = render_bird_config(node, {}, BirdConfigOptions{});
  EXPECT_NE(conf.find("route 2620:110:901b::/48 unreachable;"), std::string::npos);
  EXPECT_NE(conf.find("reject;"), std::string::npos);
}

}  // namespace
}  // namespace tango::core
