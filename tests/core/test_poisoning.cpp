// AS-path poisoning as the steering mechanism (§6's "more knobs such as
// AS-path poisoning"), and its documented semantic differences from
// community-based steering.
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

DiscoveryRequest la_to_ny(const topo::VultrScenario& s, SteeringMechanism m) {
  return DiscoveryRequest{
      .destination = kServerNy,
      .source = kServerLa,
      .prefix_pool = {s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
      .edge_asns = {kAsnVultr, kAsnServerLa, kAsnServerNy},
      .mechanism = m};
}

TEST(PoisoningDiscovery, FindsFourPathsOnVultrScenario) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  DiscoveryResult r = discover_paths(s.topo, la_to_ny(s, SteeringMechanism::poisoning));

  ASSERT_EQ(r.paths.size(), 4u);
  EXPECT_EQ(r.paths[0].label, "NTT");
  EXPECT_EQ(r.paths[1].label, "Telia");
  EXPECT_EQ(r.paths[2].label, "GTT");
  // Semantic difference vs communities: poisoning NTT repels the route from
  // NTT *everywhere*, so the composite fourth path cannot transit NTT — it
  // comes back via Level3 + Cogent instead of NTT + Cogent.
  EXPECT_EQ(r.paths[3].label, "Level3 Cogent");
  EXPECT_TRUE(r.exhausted);

  // No communities used; poisoned sets grow by one target per step.
  for (const DiscoveredPath& p : r.paths) {
    EXPECT_TRUE(p.communities.empty()) << p.to_string();
  }
  EXPECT_TRUE(r.paths[0].poisoned.empty());
  EXPECT_EQ(r.paths[1].poisoned, (std::vector<bgp::Asn>{kAsnNtt}));
  EXPECT_EQ(r.paths[2].poisoned, (std::vector<bgp::Asn>{kAsnNtt, kAsnTelia}));
  EXPECT_EQ(r.paths[3].poisoned, (std::vector<bgp::Asn>{kAsnNtt, kAsnTelia, kAsnGtt}));
}

TEST(PoisoningDiscovery, ObservedPathsCarryThePoison) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  DiscoveryResult r = discover_paths(s.topo, la_to_ny(s, SteeringMechanism::poisoning));
  ASSERT_EQ(r.paths.size(), 4u);
  // Path 2 (Telia) was exposed by poisoning NTT: the plant is visible in
  // the AS path but excluded from the label.
  EXPECT_TRUE(r.paths[1].as_path.contains(kAsnNtt));
  EXPECT_EQ(r.paths[1].label, "Telia");
}

TEST(PoisoningDiscovery, SteadyStateKeepsAllPathsUsable) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  DiscoveryResult r = discover_paths(s.topo, la_to_ny(s, SteeringMechanism::poisoning));
  for (const DiscoveredPath& p : r.paths) {
    const bgp::Route* best = s.topo.bgp().best_route(kServerLa, net::Prefix{p.prefix});
    ASSERT_NE(best, nullptr) << p.to_string();
    EXPECT_EQ(best->as_path, p.as_path);
  }
}

TEST(PoisoningDiscovery, WorksWhenProvidersIgnoreCommunities) {
  // The whole point of the poisoning knob: community-deaf providers.
  // Build the scenario, then rebuild every router's community handling off.
  topo::Topology t;
  bgp::SpeakerOptions deaf{.honors_action_communities = false};
  bgp::SpeakerOptions deaf_vultr{.honors_action_communities = false,
                                 .strips_private_asns = true,
                                 .allow_own_asn_in = true};
  t.add_router(1, 2914, "NTT", deaf);
  t.add_router(2, 1299, "Telia", deaf);
  t.add_router(10, 20473, "Vultr-A", deaf_vultr);
  t.add_router(11, 20473, "Vultr-B", deaf_vultr);
  t.add_router(20, 64512, "src", deaf);
  t.add_router(21, 64513, "dst", deaf);
  t.name_asn(2914, "NTT");
  t.name_asn(1299, "Telia");
  t.add_peering(1, 2, topo::LinkProfile{}, topo::LinkProfile{});
  t.add_transit(1, 10, topo::LinkProfile{}, topo::LinkProfile{}, 120);
  t.add_transit(2, 10, topo::LinkProfile{}, topo::LinkProfile{}, 115);
  t.add_transit(1, 11, topo::LinkProfile{}, topo::LinkProfile{}, 120);
  t.add_transit(2, 11, topo::LinkProfile{}, topo::LinkProfile{}, 115);
  t.add_transit(10, 20, topo::LinkProfile{}, topo::LinkProfile{});
  t.add_transit(11, 21, topo::LinkProfile{}, topo::LinkProfile{});

  DiscoveryRequest req{.destination = 21,
                       .source = 20,
                       .prefix_pool = {*net::Ipv6Prefix::parse("2001:db8:1::/48"),
                                       *net::Ipv6Prefix::parse("2001:db8:2::/48"),
                                       *net::Ipv6Prefix::parse("2001:db8:3::/48")},
                       .edge_asns = {20473, 64512, 64513}};

  // Communities: stuck after the first path (nothing honors them).
  req.mechanism = SteeringMechanism::communities;
  DiscoveryResult via_comm = discover_paths(t, req);
  EXPECT_EQ(via_comm.paths.size(), 1u);

  // Poisoning: loop detection is mandatory BGP behaviour, so both paths
  // are enumerated.
  req.mechanism = SteeringMechanism::poisoning;
  DiscoveryResult via_poison = discover_paths(t, req);
  ASSERT_EQ(via_poison.paths.size(), 2u);
  EXPECT_EQ(via_poison.paths[0].label, "NTT");
  EXPECT_EQ(via_poison.paths[1].label, "Telia");
  EXPECT_TRUE(via_poison.exhausted);
}

TEST(PoisoningDiscovery, SuppressionTargetSkipsPoisonedAsns) {
  const std::vector<bgp::Asn> edges{20473};
  // Observed path after poisoning 2914: the plant sits at the origin end.
  const bgp::AsPath observed{20473, 1299, 20473, 2914};
  EXPECT_EQ(suppression_target(observed, edges, /*already_excluded=*/{2914}), 1299u);
  // Without the exclusion the scan would wrongly re-pick the poison.
  EXPECT_EQ(suppression_target(observed, edges), 2914u);
}

TEST(PoisoningDiscovery, NodeLevelMechanismSelection) {
  // TangoNode::discover_outbound threads the mechanism through.
  topo::VultrScenario s = topo::make_vultr_scenario();
  sim::Wan wan{s.topo, sim::Rng{4}};
  NodeConfig la_cfg{.router = kServerLa,
                          .host_prefix = s.plan.la_hosts,
                          .tunnel_prefix_pool = {s.plan.la_tunnel.begin(),
                                                 s.plan.la_tunnel.end()},
                          .edge_asns = {kAsnVultr, kAsnServerLa}};
  NodeConfig ny_cfg{.router = kServerNy,
                          .host_prefix = s.plan.ny_hosts,
                          .tunnel_prefix_pool = {s.plan.ny_tunnel.begin(),
                                                 s.plan.ny_tunnel.end()},
                          .edge_asns = {kAsnVultr, kAsnServerNy}};
  TangoNode la{s.topo, wan, la_cfg};
  TangoNode ny{s.topo, wan, ny_cfg};

  DiscoveryResult r = la.discover_outbound(ny, 1, SteeringMechanism::poisoning);
  EXPECT_EQ(r.paths.size(), 4u);
  EXPECT_EQ(la.dp().tunnels().size(), 4u);
}

}  // namespace
}  // namespace tango::core
