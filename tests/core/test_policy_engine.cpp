// PolicyEngine unit + integration coverage: weight refresh and ranking,
// rule-specificity resolution, flowlet pinning across weight changes (the
// no-intra-flowlet-reorder contract), weighted split proportionality, and
// end-to-end hedged duplication with receiver-side dedup on clean links.
#include "core/policy_engine.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/config.hpp"
#include "core/pairing.hpp"
#include "sim/events.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

PathReport report(double owd, double loss = 0.0, sim::Time updated = sim::kSecond,
                  std::uint64_t samples = 100) {
  return PathReport{.owd_ewma_ms = owd,
                    .jitter_ms = 0.0,
                    .loss_rate = loss,
                    .samples = samples,
                    .updated_at = updated};
}

const sim::Time kNow = 2 * sim::kSecond;
constexpr bgp::RouterId kPeer = 99;
constexpr std::uint8_t kSensitive = 1;

const net::Ipv6Address kSrc =
    net::Ipv6Address::from_groups({0x2001, 0xdb8, 0, 0, 0, 0, 0, 1});
const net::Ipv6Address kDst =
    net::Ipv6Address::from_groups({0x2001, 0xdb8, 0xff, 0, 0, 0, 0, 2});

net::Packet udp(std::uint16_t dport, std::uint16_t sport = 40000) {
  const std::vector<std::uint8_t> payload(16, 0x5A);
  return net::make_udp_packet(kSrc, kDst, sport, dport, payload);
}

TEST(PolicyEngineRefresh, WeightsTrackScoreAndRankBestTwo) {
  PolicyEngine eng;
  // score = (1-loss)^2 / owd: path 2 best (0.05), path 1 half of it (0.025),
  // path 3 a lossy quarter (0.0125).
  PathViews views{{1, report(40.0)}, {2, report(20.0)}, {3, report(20.0, 0.5)}};
  eng.refresh(kPeer, views, kNow);

  EXPECT_EQ(eng.weight_of(kPeer, 2), 1000u);
  EXPECT_EQ(eng.weight_of(kPeer, 1), 500u);
  EXPECT_EQ(eng.weight_of(kPeer, 3), 250u);
  EXPECT_EQ(eng.ranked(kPeer), (std::pair<PathId, PathId>{2, 1}));
}

TEST(PolicyEngineRefresh, StalePathsWeighNothingAndAllStaleDeclines) {
  PolicyEngine eng;
  eng.set_default_mode(PolicyMode::weighted);
  const sim::Time now = 20 * sim::kSecond;  // default max_report_age = 5 s
  PathViews views{{1, report(30.0, 0.0, sim::kSecond)}, {2, report(20.0, 0.0, sim::kSecond)}};
  eng.refresh(kPeer, views, now);

  EXPECT_EQ(eng.weight_of(kPeer, 1), 0u);
  EXPECT_EQ(eng.weight_of(kPeer, 2), 0u);
  const net::Packet p = udp(7000);
  const auto d = eng.decide(p, kPeer, 0x1234, now);
  EXPECT_EQ(d.primary, PathId{0}) << "no fresh evidence: decline, ride the active path";
  EXPECT_EQ(d.duplicate, PathId{0});
}

TEST(PolicyEngineDecide, FailoverModeAlwaysDeclines) {
  PolicyEngine eng;  // default mode is failover
  PathViews views{{1, report(40.0)}, {2, report(20.0)}};
  eng.refresh(kPeer, views, kNow);

  const net::Packet p = udp(7000);
  for (std::uint64_t h : {1ull, 2ull, 3ull, 0xDEADull}) {
    const auto d = eng.decide(p, kPeer, h, kNow);
    EXPECT_EQ(d.primary, PathId{0});
    EXPECT_EQ(d.duplicate, PathId{0});
  }
  EXPECT_EQ(eng.weighted_decisions(), 0u);
  EXPECT_EQ(eng.hedged_decisions(), 0u);
  EXPECT_EQ(eng.flowlets_started(), 0u);
}

TEST(PolicyEngineDecide, HedgedDuplicatesOnBestTwo) {
  PolicyEngine eng;
  eng.set_class(kSensitive, 7001, 7001);
  eng.add_rule(PolicyMode::hedged, std::nullopt, kSensitive);
  PathViews views{{1, report(40.0)}, {2, report(20.0)}, {3, report(30.0)}};
  eng.refresh(kPeer, views, kNow);

  const auto d = eng.decide(udp(7001), kPeer, 7, kNow);
  EXPECT_EQ(d.primary, PathId{2});
  EXPECT_EQ(d.duplicate, PathId{3});
  EXPECT_EQ(eng.hedged_decisions(), 1u);

  // Unclassed traffic is untouched by the class rule.
  const auto bulk = eng.decide(udp(7000), kPeer, 8, kNow);
  EXPECT_EQ(bulk.primary, PathId{0});
  EXPECT_EQ(bulk.duplicate, PathId{0});
}

TEST(PolicyEngineDecide, HedgingDegradesToSingleSendWithOnePath) {
  PolicyEngine eng;
  eng.set_class(kSensitive, 7001, 7001);
  eng.add_rule(PolicyMode::hedged, std::nullopt, kSensitive);
  PathViews views{{4, report(25.0)}};
  eng.refresh(kPeer, views, kNow);

  const auto d = eng.decide(udp(7001), kPeer, 7, kNow);
  EXPECT_EQ(d.primary, PathId{4});
  EXPECT_EQ(d.duplicate, PathId{0}) << "no second path: plain single send";
}

TEST(PolicyEngineRules, SpecificityLadderPrefixClassOverPrefixOverClass) {
  PolicyEngine eng;
  eng.set_class(kSensitive, 7001, 7001);
  PathViews views{{1, report(40.0)}, {2, report(20.0)}};
  eng.refresh(kPeer, views, kNow);
  const net::Ipv6Prefix dst_net{net::Ipv6Address::from_groups({0x2001, 0xdb8, 0xff, 0, 0, 0, 0, 0}),
                                48};

  // class-only rule: sensitive traffic hedges.
  eng.add_rule(PolicyMode::hedged, std::nullopt, kSensitive);
  EXPECT_EQ(eng.decide(udp(7001), kPeer, 1, kNow).duplicate, PathId{1});

  // prefix rule (specificity 2) beats the class rule (1) for that prefix.
  eng.add_rule(PolicyMode::weighted, dst_net);
  EXPECT_EQ(eng.decide(udp(7001), kPeer, 2, kNow).duplicate, PathId{0});

  // prefix+class (3) wins over both.
  eng.add_rule(PolicyMode::hedged, dst_net, kSensitive);
  EXPECT_EQ(eng.decide(udp(7001), kPeer, 3, kNow).duplicate, PathId{1});

  // A rule whose prefix does not contain the destination never matches.
  PolicyEngine other;
  other.set_class(kSensitive, 7001, 7001);
  other.refresh(kPeer, views, kNow);
  other.add_rule(PolicyMode::hedged, net::Ipv6Prefix{kSrc, 128}, kSensitive);
  EXPECT_EQ(other.decide(udp(7001), kPeer, 4, kNow).primary, PathId{0});
}

TEST(PolicyEngineRules, AmongEqualSpecificityLastAddedWins) {
  PolicyEngine eng;
  eng.set_class(kSensitive, 7001, 7001);
  PathViews views{{1, report(40.0)}, {2, report(20.0)}};
  eng.refresh(kPeer, views, kNow);

  eng.add_rule(PolicyMode::hedged, std::nullopt, kSensitive);
  eng.add_rule(PolicyMode::failover, std::nullopt, kSensitive);
  const auto d = eng.decide(udp(7001), kPeer, 1, kNow);
  EXPECT_EQ(d.primary, PathId{0}) << "the later failover rule overrides the hedge";
}

TEST(PolicyEngineFlowlets, LiveFlowletStaysPinnedAcrossWeightChanges) {
  // The ordering contract: while a flow keeps packets inside the flowlet
  // gap, its path never changes, no matter how violently the weights move.
  PolicyEngine eng;
  eng.set_default_mode(PolicyMode::weighted);
  PathViews views{{1, report(30.0)}, {2, report(31.0)}, {3, report(32.0)}};
  eng.refresh(kPeer, views, kNow);

  const std::uint64_t flow = 0xABCDEF0102030405ull;
  const net::Packet p = udp(7000);
  const sim::Time gap = eng.options().flowlet_gap;

  sim::Time now = kNow;
  const PathId pinned = eng.decide(p, kPeer, flow, now).primary;
  ASSERT_NE(pinned, PathId{0});
  EXPECT_EQ(eng.flowlets_started(), 1u);

  for (int i = 0; i < 200; ++i) {
    now += gap / 2;  // always inside the gap: the flowlet stays live
    // Re-rank hard every packet: swap which path looks best.
    const double a = (i % 2 == 0) ? 5.0 : 60.0;
    const double b = (i % 2 == 0) ? 60.0 : 5.0;
    PathViews wobble{{1, report(a, 0.0, now)}, {2, report(b, 0.0, now)},
                     {3, report(35.0, 0.0, now)}};
    eng.refresh(kPeer, wobble, now);
    EXPECT_EQ(eng.decide(p, kPeer, flow, now).primary, pinned) << "packet " << i;
  }
  EXPECT_EQ(eng.flowlets_started(), 1u) << "one continuous flowlet";
  EXPECT_EQ(eng.flowlet_switches(), 0u);
}

TEST(PolicyEngineFlowlets, IdleGapAllowsRerouteAndDeadPathForcesOne) {
  PolicyEngine eng;
  eng.set_default_mode(PolicyMode::weighted);
  PathViews views{{1, report(30.0)}, {2, report(30.0)}};
  eng.refresh(kPeer, views, kNow);

  const std::uint64_t flow = 42;
  const net::Packet p = udp(7000);
  sim::Time now = kNow;
  const PathId first = eng.decide(p, kPeer, flow, now).primary;
  ASSERT_NE(first, PathId{0});

  // The pinned path loses all weight (stale report): even a live flowlet
  // must abandon it — pinning never overrides path death.
  now += eng.options().flowlet_gap / 4;
  const PathId other = first == PathId{1} ? PathId{2} : PathId{1};
  PathViews dead{{other, report(30.0, 0.0, now)}};
  eng.refresh(kPeer, dead, now);
  EXPECT_EQ(eng.decide(p, kPeer, flow, now).primary, other);
  EXPECT_EQ(eng.flowlet_switches(), 1u);
  EXPECT_EQ(eng.flowlets_started(), 2u);
}

TEST(PolicyEngineFlowlets, WeightedSplitTracksWeights) {
  PolicyEngine eng;
  eng.set_default_mode(PolicyMode::weighted);
  // owd 10 vs 30: weights 1000 vs 333 — expect a ~3:1 split.
  PathViews views{{1, report(10.0)}, {2, report(30.0)}};
  eng.refresh(kPeer, views, kNow);

  const net::Packet p = udp(7000);
  std::map<PathId, int> picks;
  for (std::uint64_t flow = 0; flow < 4000; ++flow) {
    ++picks[eng.decide(p, kPeer, flow * 0x9E3779B97F4A7C15ull + 1, kNow).primary];
  }
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_GT(picks[1], 0);
  EXPECT_GT(picks[2], 0);
  const double ratio = static_cast<double>(picks[1]) / picks[2];
  EXPECT_GT(ratio, 2.0) << "split must favor the 3x-weighted path";
  EXPECT_LT(ratio, 4.5);
  EXPECT_EQ(eng.flowlets_started(), 4000u) << "distinct flows, one flowlet each";
}

// --- End-to-end hedging over the Vultr scenario ------------------------------

class PolicyEngineE2E : public ::testing::Test {
 protected:
  PolicyEngineE2E()
      : s_{topo::make_vultr_scenario()},
        wan_{s_.topo, sim::Rng{77}},
        la_{s_.topo, wan_, la_config(s_)},
        ny_{s_.topo, wan_, ny_config(s_)},
        pairing_{wan_, la_, ny_} {}

  static NodeConfig la_config(const topo::VultrScenario& s) {
    return NodeConfig{.router = kServerLa,
                      .host_prefix = s.plan.la_hosts,
                      .tunnel_prefix_pool = {s.plan.la_tunnel.begin(), s.plan.la_tunnel.end()},
                      .edge_asns = {kAsnVultr, kAsnServerLa}};
  }
  static NodeConfig ny_config(const topo::VultrScenario& s) {
    return NodeConfig{.router = kServerNy,
                      .host_prefix = s.plan.ny_hosts,
                      .tunnel_prefix_pool = {s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
                      .edge_asns = {kAsnVultr, kAsnServerNy}};
  }

  topo::VultrScenario s_;
  sim::Wan wan_;
  TangoNode la_;
  TangoNode ny_;
  TangoPairing pairing_;
};

TEST_F(PolicyEngineE2E, HedgedClassDedupsAtReceiverWithMatchedCounters) {
  pairing_.establish();
  ny_.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  ny_.enable_policy_engine();
  PolicyEngine* eng = ny_.policy_engine();
  ASSERT_NE(eng, nullptr);
  eng->set_class(kSensitive, 7001, 7001);
  eng->add_rule(PolicyMode::hedged, std::nullopt, kSensitive);
  la_.dp().arm_hedge_dedup(7001, 7001);

  std::uint64_t delivered = 0;
  la_.dp().set_host_handler(
      [&delivered](const net::Packet& inner, const std::optional<dataplane::ReceiveInfo>& info) {
        if (info && net::udp_dst_port(inner) == 7001) ++delivered;  // probes ride too
      });

  pairing_.start();
  ny_.start_probing(10 * sim::kMillisecond);
  la_.start_probing(10 * sim::kMillisecond);
  wan_.events().run_until(5 * sim::kSecond);  // weights + ranking populate

  ASSERT_NE(eng->ranked(kServerLa).second, PathId{0}) << "two ranked paths required";

  // 200 sensitive packets, each with a distinct payload (the dedup hashes
  // content: identical app payloads would alias as hedged copies).
  constexpr std::uint64_t kPackets = 200;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    std::vector<std::uint8_t> payload(24, 0);
    for (int b = 0; b < 8; ++b) payload[b] = static_cast<std::uint8_t>(i >> (8 * b));
    const net::Packet p = net::make_udp_packet(ny_.host_address(2), la_.host_address(2),
                                               33333, 7001, payload);
    wan_.events().schedule_in(5 * sim::kSecond + i * sim::kMillisecond,
                              [this, p]() { ny_.dp().send_from_host(p); });
  }
  wan_.events().run_until(12 * sim::kSecond);
  pairing_.stop();
  ny_.stop_probing();
  la_.stop_probing();
  wan_.events().run_all();

  // Vultr links are ~1e-5 lossy; this seeded run delivers everything.  The
  // receiver must hand hosts each packet exactly once, and every duplicate
  // the sender emitted must be the suppression the receiver counted.
  EXPECT_EQ(delivered, kPackets) << "no loss, no double delivery";
  EXPECT_EQ(ny_.dp().hedge_duplicates(), kPackets) << "every sensitive packet hedged";
  EXPECT_EQ(la_.dp().hedge_suppressed(), ny_.dp().hedge_duplicates());
  EXPECT_EQ(eng->hedged_decisions(), kPackets);
}

TEST_F(PolicyEngineE2E, BulkTrafficUnaffectedByHedgeRule) {
  pairing_.establish();
  ny_.enable_policy_engine();
  ny_.policy_engine()->set_class(kSensitive, 7001, 7001);
  ny_.policy_engine()->add_rule(PolicyMode::hedged, std::nullopt, kSensitive);
  la_.dp().arm_hedge_dedup(7001, 7001);

  std::uint64_t delivered = 0;
  la_.dp().set_host_handler(
      [&delivered](const net::Packet&, const std::optional<dataplane::ReceiveInfo>& info) {
        if (info) ++delivered;
      });

  const std::vector<std::uint8_t> payload(24, 0x11);
  for (int i = 0; i < 50; ++i) {
    const net::Packet p = net::make_udp_packet(ny_.host_address(2), la_.host_address(2),
                                               33334, 7000, payload);
    wan_.events().schedule_in(i * sim::kMillisecond, [this, p]() { ny_.dp().send_from_host(p); });
  }
  wan_.events().run_all();

  EXPECT_EQ(delivered, 50u);
  EXPECT_EQ(ny_.dp().hedge_duplicates(), 0u) << "bulk class never hedges";
  EXPECT_EQ(la_.dp().hedge_suppressed(), 0u);
}

}  // namespace
}  // namespace tango::core
