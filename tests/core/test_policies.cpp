#include "core/routing_policy.hpp"

#include <gtest/gtest.h>

namespace tango::core {
namespace {

PathReport report(double owd, double jitter = 0.0, double loss = 0.0,
                  sim::Time updated = sim::kSecond, std::uint64_t samples = 100) {
  return PathReport{.owd_ewma_ms = owd,
                    .jitter_ms = jitter,
                    .loss_rate = loss,
                    .samples = samples,
                    .updated_at = updated};
}

const sim::Time kNow = 2 * sim::kSecond;

TEST(PathReport, FreshnessWindow) {
  PathReport r = report(30.0);
  EXPECT_TRUE(r.fresh(kNow, 5 * sim::kSecond));
  EXPECT_FALSE(r.fresh(kNow + 10 * sim::kSecond, 5 * sim::kSecond));
  PathReport empty;
  EXPECT_FALSE(empty.fresh(kNow, 5 * sim::kSecond)) << "no samples = not fresh";
}

TEST(BgpDefaultPolicy, AlwaysDefaultRegardlessOfReports) {
  BgpDefaultPolicy p{1};
  PathViews views{{1, report(36.9)}, {3, report(28.4)}};
  EXPECT_EQ(p.choose(views, kNow, std::nullopt), PathId{1});
  EXPECT_EQ(p.choose(views, kNow, PathId{3}), PathId{1});
  EXPECT_EQ(p.name(), "bgp-default");
}

TEST(StaticPathPolicy, AlwaysPinned) {
  StaticPathPolicy p{3};
  EXPECT_EQ(p.choose({}, kNow, std::nullopt), PathId{3});
}

TEST(LowestDelayPolicy, PicksMinimum) {
  LowestDelayPolicy p;
  PathViews views{{1, report(36.9)}, {2, report(32.9)}, {3, report(28.4)}, {4, report(41.0)}};
  EXPECT_EQ(p.choose(views, kNow, PathId{1}), PathId{3});
}

TEST(LowestDelayPolicy, IgnoresStaleReports) {
  LowestDelayPolicy p{/*max_report_age=*/sim::kSecond};
  PathViews views{{1, report(36.9, 0, 0, kNow)},
                  {3, report(28.4, 0, 0, /*updated=*/0)}};  // stale by 2 s
  EXPECT_EQ(p.choose(views, kNow, std::nullopt), PathId{1});
}

TEST(LowestDelayPolicy, FallsBackToCurrentThenFirst) {
  LowestDelayPolicy p{sim::kSecond};
  PathViews stale{{2, report(30.0, 0, 0, 0)}};
  EXPECT_EQ(p.choose(stale, 10 * sim::kSecond, PathId{7}), PathId{7});
  EXPECT_EQ(p.choose(stale, 10 * sim::kSecond, std::nullopt), PathId{2});
  EXPECT_FALSE(p.choose({}, kNow, std::nullopt).has_value());
}

TEST(LowestDelayPolicy, FallsBackToLeastStaleReport) {
  // Regression: with no fresh report and no incumbent, the policy used to
  // fall back to the arbitrary lowest path id — which can be a withdrawn or
  // dead path.  It must prefer the least-stale measured report instead.
  LowestDelayPolicy p{/*max_report_age=*/sim::kSecond};
  const sim::Time now = 10 * sim::kSecond;
  PathViews views{{1, report(28.0, 0, 0, /*updated=*/sim::kSecond)},      // stalest
                  {2, report(40.0, 0, 0, /*updated=*/3 * sim::kSecond)},  // least stale
                  {3, report(30.0, 0, 0, /*updated=*/2 * sim::kSecond)}};
  EXPECT_EQ(p.choose(views, now, std::nullopt), PathId{2})
      << "the most recently updated report is the best evidence of life";
}

TEST(LowestDelayPolicy, LeastStaleFallbackIgnoresUnmeasuredPaths) {
  LowestDelayPolicy p{sim::kSecond};
  const sim::Time now = 10 * sim::kSecond;
  // Path 1 was never measured (samples=0) but its updated_at is newest —
  // no evidence it works, so the measured path 2 must win.
  PathViews views{{1, report(28.0, 0, 0, /*updated=*/9 * sim::kSecond, /*samples=*/0)},
                  {2, report(40.0, 0, 0, /*updated=*/2 * sim::kSecond)}};
  EXPECT_EQ(p.choose(views, now, std::nullopt), PathId{2});
  // All views unmeasured: lowest id remains the last resort.
  PathViews unmeasured{{4, report(28.0, 0, 0, 9 * sim::kSecond, 0)},
                       {7, report(40.0, 0, 0, 2 * sim::kSecond, 0)}};
  EXPECT_EQ(p.choose(unmeasured, now, std::nullopt), PathId{4});
}

TEST(LowestJitterPolicy, PicksCalmestPath) {
  // §5: GTT sigma 0.01 ms vs Telia 0.33 ms — a jitter-sensitive app prefers
  // GTT even if delay ordering said otherwise.
  LowestJitterPolicy p;
  PathViews views{{1, report(36.9, 0.12)}, {2, report(32.9, 0.33)}, {3, report(28.4, 0.01)}};
  EXPECT_EQ(p.choose(views, kNow, PathId{2}), PathId{3});
}

TEST(HysteresisPolicy, StaysPutWithinMargin) {
  HysteresisPolicy p{/*margin_ms=*/1.0};
  PathViews views{{1, report(29.0)}, {2, report(28.5)}};
  // Challenger is only 0.5 ms better: stay.
  EXPECT_EQ(p.choose(views, kNow, PathId{1}), PathId{1});
}

TEST(HysteresisPolicy, MovesBeyondMargin) {
  HysteresisPolicy p{1.0};
  PathViews views{{1, report(31.0)}, {2, report(28.4)}};
  EXPECT_EQ(p.choose(views, kNow, PathId{1}), PathId{2});
}

TEST(HysteresisPolicy, MovesWhenIncumbentGoesStale) {
  HysteresisPolicy p{1.0, /*max_report_age=*/sim::kSecond};
  const sim::Time now = 10 * sim::kSecond;
  PathViews views{{1, report(28.0, 0, 0, /*updated=*/0)},  // stale
                  {2, report(28.5, 0, 0, now)}};
  EXPECT_EQ(p.choose(views, now, PathId{1}), PathId{2});
}

TEST(HysteresisPolicy, NoFlappingUnderNoise) {
  // Two paths whose reports wobble within the margin: the chosen path must
  // never change.
  HysteresisPolicy p{1.0};
  std::optional<PathId> current = PathId{1};
  for (int i = 0; i < 100; ++i) {
    const double noise = 0.4 * ((i % 3) - 1);  // -0.4, 0, +0.4
    PathViews views{{1, report(28.6 + noise, 0, 0, kNow)},
                    {2, report(28.4 - noise, 0, 0, kNow)}};
    current = p.choose(views, kNow, current);
    EXPECT_EQ(current, PathId{1}) << "iteration " << i;
  }
}

TEST(WeightedScorePolicy, TradesDelayAgainstLoss) {
  // Path 3 is fastest but lossy; with loss weighted heavily, path 2 wins.
  WeightedScorePolicy delay_only{{.delay = 1.0, .jitter = 0.0, .loss = 0.0}};
  WeightedScorePolicy loss_averse{{.delay = 1.0, .jitter = 0.0, .loss = 1000.0}};
  PathViews views{{2, report(32.9, 0.3, 0.0)}, {3, report(28.4, 0.0, 0.02)}};
  EXPECT_EQ(delay_only.choose(views, kNow, std::nullopt), PathId{3});
  EXPECT_EQ(loss_averse.choose(views, kNow, std::nullopt), PathId{2});
}

TEST(WeightedScorePolicy, JitterWeightSelectsCalmPath) {
  WeightedScorePolicy p{{.delay = 0.0, .jitter = 1.0, .loss = 0.0}};
  PathViews views{{1, report(28.0, 0.33)}, {2, report(33.0, 0.01)}};
  EXPECT_EQ(p.choose(views, kNow, std::nullopt), PathId{2});
}

}  // namespace
}  // namespace tango::core
