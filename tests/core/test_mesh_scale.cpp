// Tango-of-N at mesh scale: 8 sites on stub routers of a generated
// Gao–Rexford topology, 56 ordered pairs.  Verifies the properties the
// bench (E15) gates on at 64 sites: compact disjoint path ids from the
// mesh allocator, per-pair feedback delivery, and — the load-bearing
// one — that the interleaved discovery work-queue produces results
// identical to running the historical sequential loop per direction.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/mesh.hpp"
#include "topo/mesh_gen.hpp"

namespace tango::core {
namespace {

constexpr std::size_t kSites = 8;

/// A small generated mesh with Tango sites on its first kSites stubs.
/// Everything is seed-determined, so two Worlds with the same seed hold
/// byte-identical control planes — the basis of the mode-equivalence test.
struct World {
  topo::Topology topo;
  std::unique_ptr<sim::Wan> wan;
  std::vector<std::unique_ptr<TangoNode>> nodes;
  std::unique_ptr<TangoMesh> mesh;

  explicit World(std::uint64_t seed = 7) {
    topo::MeshParams params{.tier1 = 3, .tier2 = 8, .stubs = 16, .prefixes_per_stub = 2};
    params.seed = seed;
    const topo::Mesh m = topo::generate_mesh(topo, params);
    // 14 pool prefixes across 7 inbound pairs: 2-prefix slices, so each
    // direction can expose up to two paths.
    const auto plans = topo::plan_mesh_sites(topo, m, kSites, 2 * (kSites - 1));
    topo.bgp().run_to_convergence();
    wan = std::make_unique<sim::Wan>(topo, sim::Rng{seed});
    mesh = std::make_unique<TangoMesh>(*wan);
    for (const auto& plan : plans) {
      nodes.push_back(std::make_unique<TangoNode>(
          topo, *wan,
          NodeConfig{.router = plan.router,
                     .host_prefix = plan.hosts,
                     .tunnel_prefix_pool = plan.tunnel_pool,
                     .edge_asns = {plan.asn}}));
      mesh->add_site(*nodes.back());
    }
  }
};

TEST(MeshScale, CompactDisjointIdsAcrossAllOrderedPairs) {
  World w;
  const auto results = w.mesh->establish();
  ASSERT_EQ(results.size(), kSites * (kSites - 1));

  std::set<PathId> ids;
  std::size_t total = 0;
  for (const auto& result : results) {
    EXPECT_FALSE(result.paths.empty()) << "a direction discovered nothing";
    for (const auto& path : result.paths) {
      EXPECT_TRUE(ids.insert(path.id).second) << "path id " << path.id << " collides";
      ++total;
    }
  }
  // Compact: the allocator hands out exactly 1..total, no stride holes (the
  // old 16-per-pair scheme would have spread these over 56*16 = 896 ids).
  ASSERT_FALSE(ids.empty());
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), total);
  EXPECT_EQ(w.mesh->ids().allocated(), total);

  const MeshEstablishStats& stats = w.mesh->establish_stats();
  EXPECT_EQ(stats.directions, results.size());
  EXPECT_EQ(stats.paths, total);
  EXPECT_GT(stats.discovery_rounds, 0u);
  // The whole point of the work-queue: convergence runs scale with the
  // longest direction (rounds + flush), not with the direction count.
  EXPECT_EQ(stats.convergence_runs, stats.discovery_rounds + 1);
  EXPECT_LT(stats.convergence_runs, results.size());

  // The installed view agrees with the results.
  for (const auto& node : w.nodes) {
    EXPECT_EQ(node->peers().size(), kSites - 1);
  }
}

TEST(MeshScale, SequentialAndInterleavedEstablishAreIdentical) {
  World seq_world;
  World batch_world;
  const auto seq = seq_world.mesh->establish(SteeringMechanism::communities,
                                             EstablishMode::sequential);
  const auto batch = batch_world.mesh->establish(SteeringMechanism::communities,
                                                 EstablishMode::interleaved);
  ASSERT_EQ(seq.size(), batch.size());
  for (std::size_t k = 0; k < seq.size(); ++k) {
    ASSERT_EQ(seq[k].paths.size(), batch[k].paths.size()) << "direction " << k;
    EXPECT_EQ(seq[k].exhausted, batch[k].exhausted) << "direction " << k;
    ASSERT_EQ(seq[k].steps.size(), batch[k].steps.size()) << "direction " << k;
    for (std::size_t i = 0; i < seq[k].paths.size(); ++i) {
      const DiscoveredPath& a = seq[k].paths[i];
      const DiscoveredPath& b = batch[k].paths[i];
      EXPECT_EQ(a.id, b.id) << "direction " << k << " path " << i;
      EXPECT_EQ(a.prefix, b.prefix) << "direction " << k << " path " << i;
      EXPECT_EQ(a.as_path, b.as_path) << "direction " << k << " path " << i;
      EXPECT_EQ(a.label, b.label) << "direction " << k << " path " << i;
      EXPECT_EQ(a.poisoned, b.poisoned) << "direction " << k << " path " << i;
    }
    for (std::size_t i = 0; i < seq[k].steps.size(); ++i) {
      EXPECT_EQ(seq[k].steps[i].prefix, batch[k].steps[i].prefix);
      EXPECT_EQ(seq[k].steps[i].observed, batch[k].steps[i].observed);
    }
  }

  // Same installed state either way: every node's per-peer path lists match.
  for (std::size_t n = 0; n < seq_world.nodes.size(); ++n) {
    EXPECT_EQ(seq_world.nodes[n]->peer_paths(), batch_world.nodes[n]->peer_paths());
  }

  // And the batch engine must actually be cheaper on convergence runs.
  EXPECT_LT(batch_world.mesh->establish_stats().convergence_runs,
            seq_world.mesh->establish_stats().convergence_runs);
}

TEST(MeshScale, FeedbackDeliversReportsForEveryOrderedPair) {
  World w;
  w.mesh->establish();
  w.mesh->start();
  w.mesh->start_probing(10 * sim::kMillisecond);
  w.wan->events().run_until(2 * sim::kSecond);
  w.mesh->stop();
  w.mesh->stop_probing();
  w.wan->events().run_all();

  EXPECT_GT(w.mesh->reports_delivered(), 0u);
  for (const auto& node : w.nodes) {
    for (const auto& [peer, ids] : node->peer_paths()) {
      for (PathId id : ids) {
        EXPECT_NE(node->registry().report(id), nullptr)
            << "no feedback for path " << id << " toward " << peer;
      }
    }
  }
  // Pairing-state accounting covers every site's registries and trackers.
  EXPECT_GT(w.mesh->pairing_state_bytes(), kSites * sizeof(TangoNode));
}

}  // namespace
}  // namespace tango::core
