// End-to-end integration: the full Tango stack on the Vultr scenario —
// discovery, tunnels, probing, one-way measurement under unsynchronized
// clocks, cooperative feedback, and adaptive path selection through an
// injected incident.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/pairing.hpp"
#include "sim/events.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : s_{topo::make_vultr_scenario()},
        wan_{s_.topo, sim::Rng{2024}},
        la_{s_.topo, wan_, la_config(s_)},
        ny_{s_.topo, wan_, ny_config(s_)},
        pairing_{wan_, la_, ny_} {}

  static NodeConfig la_config(const topo::VultrScenario& s) {
    return NodeConfig{
        .router = kServerLa,
        .host_prefix = s.plan.la_hosts,
        .tunnel_prefix_pool = {s.plan.la_tunnel.begin(), s.plan.la_tunnel.end()},
        .edge_asns = {kAsnVultr, kAsnServerLa},
        // Unsynchronized clocks, deliberately (the paper's setting).
        .clock = sim::NodeClock{+7 * sim::kMillisecond},
        .keep_series = true};
  }

  static NodeConfig ny_config(const topo::VultrScenario& s) {
    return NodeConfig{
        .router = kServerNy,
        .host_prefix = s.plan.ny_hosts,
        .tunnel_prefix_pool = {s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
        .edge_asns = {kAsnVultr, kAsnServerNy},
        .clock = sim::NodeClock{-4 * sim::kMillisecond},
        .keep_series = true};
  }

  topo::VultrScenario s_;
  sim::Wan wan_;
  TangoNode la_;
  TangoNode ny_;
  TangoPairing pairing_;
};

TEST_F(IntegrationTest, EstablishDiscoversFourPathsEachWay) {
  auto [la_out, ny_out] = pairing_.establish();
  EXPECT_EQ(la_out.paths.size(), 4u);
  EXPECT_EQ(ny_out.paths.size(), 4u);
  EXPECT_EQ(la_.dp().tunnels().size(), 4u);
  EXPECT_EQ(ny_.dp().tunnels().size(), 4u);
  // Default path active until measurements arrive.
  EXPECT_EQ(la_.dp().active_path(kServerNy), PathId{1});
  EXPECT_EQ(ny_.dp().active_path(kServerLa), PathId{1});
  // Registry mirrors the tunnels.
  EXPECT_EQ(la_.registry().size(), 4u);
  ASSERT_NE(la_.registry().find(1), nullptr);
  EXPECT_EQ(la_.registry().find(1)->label, "NTT");
}

TEST_F(IntegrationTest, ProbesMeasureCalibratedOneWayDelays) {
  pairing_.establish();
  ny_.start_probing(10 * sim::kMillisecond);  // NY -> LA probes
  wan_.events().run_until(30 * sim::kSecond);
  ny_.stop_probing();
  wan_.events().run_all();

  // LA's receiver holds NY->LA one-way delays for all four paths; the clock
  // offset (rx +7ms, tx -4ms => +11ms) shifts everything equally.
  const double offset = 11.0;
  struct Expect {
    PathId id;
    double true_ms;
  };
  // NY->LA totals: backbone + 0.9 handoffs (NTT 36.9, Telia 32.9, GTT 28.4,
  // NTT+Level3 ~ 0.2+0.5+10+34+0.2 = 44.9 + gamma mean ~0.6).
  for (const Expect& e : {Expect{1, 36.9}, Expect{2, 32.9}, Expect{3, 28.4}}) {
    const dataplane::PathTracker* t = la_.dp().receiver().tracker(e.id);
    ASSERT_NE(t, nullptr) << "path " << e.id;
    EXPECT_GT(t->delay().lifetime().count(), 1000u);
    EXPECT_NEAR(t->delay().lifetime().mean(), e.true_ms + offset, 1.0) << "path " << e.id;
  }
  const dataplane::PathTracker* level3 = la_.dp().receiver().tracker(4);
  ASSERT_NE(level3, nullptr);
  EXPECT_NEAR(level3->delay().lifetime().mean(), 44.9 + 0.3 + offset, 1.5);

  // Relative ordering (what Tango actually uses) is offset-free: GTT best.
  EXPECT_LT(la_.dp().receiver().tracker(3)->delay().lifetime().mean(),
            la_.dp().receiver().tracker(2)->delay().lifetime().mean());
  EXPECT_LT(la_.dp().receiver().tracker(2)->delay().lifetime().mean(),
            la_.dp().receiver().tracker(1)->delay().lifetime().mean());
}

TEST_F(IntegrationTest, FeedbackLoopPopulatesSenderReports) {
  pairing_.establish();
  pairing_.start();
  ny_.start_probing(10 * sim::kMillisecond);
  la_.start_probing(10 * sim::kMillisecond);
  wan_.events().run_until(5 * sim::kSecond);
  pairing_.stop();
  ny_.stop_probing();
  la_.stop_probing();
  wan_.events().run_all();

  EXPECT_GT(pairing_.reports_delivered(), 0u);
  // NY (the sender toward LA) must now have reports on all four paths.
  for (PathId id = 1; id <= 4; ++id) {
    const PathReport* r = ny_.registry().report(id);
    ASSERT_NE(r, nullptr) << "path " << id;
    EXPECT_GT(r->samples, 0u);
  }
  // And the report ordering identifies GTT as fastest despite clock offset.
  EXPECT_LT(ny_.registry().report(3)->owd_ewma_ms, ny_.registry().report(1)->owd_ewma_ms);
}

TEST_F(IntegrationTest, AdaptivePolicyLeavesDefaultForGtt) {
  pairing_.establish();
  ny_.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  pairing_.start();
  ny_.start_probing(10 * sim::kMillisecond);
  la_.start_probing(10 * sim::kMillisecond);

  wan_.events().run_until(5 * sim::kSecond);

  // NY's sender should have moved off the default (NTT, path 1) to GTT (3).
  EXPECT_EQ(ny_.dp().active_path(kServerLa), PathId{3});
  EXPECT_GE(ny_.path_switches(), 1u);

  pairing_.stop();
  ny_.stop_probing();
  la_.stop_probing();
  wan_.events().run_all();
}

TEST_F(IntegrationTest, InstabilityEventTriggersSwitchAwayAndApplicationSurvives) {
  pairing_.establish();
  ny_.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  pairing_.start();
  ny_.start_probing(10 * sim::kMillisecond);
  la_.start_probing(10 * sim::kMillisecond);

  // Let it settle on GTT first.
  wan_.events().run_until(5 * sim::kSecond);
  ASSERT_EQ(ny_.dp().active_path(kServerLa), PathId{3});

  // Inject the §5 instability storm on GTT toward LA, strong enough that
  // GTT's EWMA exceeds Telia's 32.9 ms.
  sim::inject(wan_, sim::InstabilityEvent{.link = topo::VultrScenario::backbone_to_la(kAsnGtt),
                                          .at = 6 * sim::kSecond,
                                          .duration = 60 * sim::kSecond,
                                          .noise_sigma_ms = 4.0,
                                          .spike_prob = 0.25,
                                          .spike_min_ms = 20.0,
                                          .spike_max_ms = 50.0});

  wan_.events().run_until(30 * sim::kSecond);
  EXPECT_NE(ny_.dp().active_path(kServerLa), PathId{3})
      << "policy must abandon GTT during the storm";

  // After the storm ends GTT recovers and wins again.
  wan_.events().run_until(120 * sim::kSecond);
  EXPECT_EQ(ny_.dp().active_path(kServerLa), PathId{3});

  pairing_.stop();
  ny_.stop_probing();
  la_.stop_probing();
  wan_.events().run_all();
}

TEST_F(IntegrationTest, ApplicationTrafficPiggybacksMeasurements) {
  pairing_.establish();
  // No probes at all: send application traffic LA->NY on the active path
  // and verify the receiver measured it (the "no probing needed" claim).
  std::uint64_t delivered = 0;
  ny_.dp().set_host_handler(
      [&delivered](const net::Packet&, const std::optional<dataplane::ReceiveInfo>& info) {
        if (info) ++delivered;
      });

  const std::vector<std::uint8_t> payload(200, 0xAB);
  for (int i = 0; i < 50; ++i) {
    const net::Packet p = net::make_udp_packet(la_.host_address(1),
                                               ny_.host_address(2), 40000, 443, payload);
    wan_.events().schedule_in(i * sim::kMillisecond, [this, p]() {
      la_.dp().send_from_host(p);
    });
  }
  wan_.events().run_all();

  EXPECT_EQ(delivered, 50u);
  const dataplane::PathTracker* t = ny_.dp().receiver().tracker(1);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->delay().lifetime().count(), 50u);
  EXPECT_EQ(t->loss().lost(), 0u);
}

TEST_F(IntegrationTest, ConfigRoundTripsFromLiveState) {
  pairing_.establish();
  TangoConfig config;
  config.peer_host_prefix = s_.plan.ny_hosts;
  for (PathId id : la_.dp().tunnels().ids()) {
    config.tunnels.push_back(TunnelConfigEntry{
        .tunnel = *la_.dp().tunnels().find(id),
        .communities = la_.registry().find(id)->communities});
  }
  auto parsed = parse_config(render_config(config));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, config);
  EXPECT_EQ(parsed->tunnels.size(), 4u);
}

}  // namespace
}  // namespace tango::core
