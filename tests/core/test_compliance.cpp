// §6 trustworthy telemetry, sender side: the wire-report ingest pipeline
// (forged / replayed / stale / gap classification) and the compliance
// monitor that cross-checks a peer's cumulative claims against the sender's
// own sent accounting — authentication proves *who* spoke, compliance
// decides whether to *believe* them.
#include "core/compliance.hpp"

#include <gtest/gtest.h>

#include "core/pairing.hpp"
#include "net/report.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

const net::SipHashKey kKey{.k0 = 0x746f6e6779776f6eull, .k1 = 0x74616e676f746e67ull};
const net::SipHashKey kWrongKey{.k0 = 1, .k1 = 2};

PathReport make_report(std::uint64_t samples, std::uint64_t lost) {
  PathReport r;
  r.owd_ewma_ms = 30.0;
  r.samples = samples;
  r.lost = lost;
  r.updated_at = sim::kSecond;
  return r;
}

// --- ComplianceMonitor unit ---------------------------------------------------

TEST(ComplianceMonitor, HonestReportsPass) {
  ComplianceMonitor m;
  EXPECT_EQ(m.check(1, make_report(10, 0), 12), ComplianceVerdict::ok);
  EXPECT_EQ(m.check(1, make_report(25, 3), 30), ComplianceVerdict::ok);
  // Trailing far behind `sent` is normal (in-flight packets): never flagged.
  EXPECT_EQ(m.check(1, make_report(25, 3), 1000), ComplianceVerdict::ok);
  EXPECT_EQ(m.violations(), 0u);
  EXPECT_FALSE(m.flagged(1));
}

TEST(ComplianceMonitor, OverclaimFlagsThePath) {
  ComplianceMonitor m;
  // 90 measured + 20 lost = 110 packets claimed, but only 100 ever sent.
  EXPECT_EQ(m.check(2, make_report(90, 20), 100), ComplianceVerdict::overclaim);
  EXPECT_TRUE(m.flagged(2));
  EXPECT_EQ(m.flagged_paths(), 1u);
  // Once caught, even a plausible follow-up is rejected unexamined.
  EXPECT_EQ(m.check(2, make_report(50, 0), 200), ComplianceVerdict::flagged);
  EXPECT_EQ(m.violations(), 2u);
}

TEST(ComplianceMonitor, RegressingCumulativesFlagThePath) {
  ComplianceMonitor m;
  EXPECT_EQ(m.check(3, make_report(100, 5), 200), ComplianceVerdict::ok);
  EXPECT_EQ(m.check(3, make_report(80, 5), 200), ComplianceVerdict::regression)
      << "cumulative counters only grow";
  EXPECT_TRUE(m.flagged(3));

  ComplianceMonitor m2;
  EXPECT_EQ(m2.check(3, make_report(100, 5), 200), ComplianceVerdict::ok);
  EXPECT_EQ(m2.check(3, make_report(120, 2), 200), ComplianceVerdict::regression)
      << "lost counter rewound";
}

TEST(ComplianceMonitor, PathsAreIndependent) {
  ComplianceMonitor m;
  EXPECT_EQ(m.check(1, make_report(500, 0), 100), ComplianceVerdict::overclaim);
  EXPECT_EQ(m.check(2, make_report(50, 0), 100), ComplianceVerdict::ok)
      << "one lying path must not poison its siblings";
  EXPECT_TRUE(m.flagged(1));
  EXPECT_FALSE(m.flagged(2));
}

// --- TangoNode wire ingest ----------------------------------------------------

class ReportIngestTest : public ::testing::Test {
 protected:
  ReportIngestTest()
      : s_{topo::make_vultr_scenario()},
        wan_{s_.topo, sim::Rng{2024}},
        la_{s_.topo, wan_, config(s_, kServerLa)},
        ny_{s_.topo, wan_, config(s_, kServerNy)},
        pairing_{wan_, la_, ny_} {
    pairing_.establish();
    // Put genuine traffic on LA's outbound paths so its sender accounting
    // and NY's receiver state are both live.
    la_.start_probing(10 * sim::kMillisecond);
    wan_.events().run_until(sim::kSecond);
    la_.stop_probing();
    wan_.events().run_all();
  }

  static NodeConfig config(const topo::VultrScenario& s, bgp::RouterId router) {
    const bool is_la = router == kServerLa;
    return NodeConfig{
        .router = router,
        .host_prefix = is_la ? s.plan.la_hosts : s.plan.ny_hosts,
        .tunnel_prefix_pool = is_la
            ? std::vector<net::Ipv6Prefix>{s.plan.la_tunnel.begin(), s.plan.la_tunnel.end()}
            : std::vector<net::Ipv6Prefix>{s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
        .edge_asns = {kAsnVultr, is_la ? kAsnServerLa : kAsnServerNy},
        .auth_key = kKey};
  }

  /// NY's next genuine envelope about LA's outbound path `id`.
  std::vector<std::uint8_t> genuine_envelope(PathId id) {
    auto wire = ny_.build_report_envelope_for(id, wan_.now());
    EXPECT_TRUE(wire.has_value());
    return wire.value_or(std::vector<std::uint8_t>{});
  }

  topo::VultrScenario s_;
  sim::Wan wan_;
  TangoNode la_;
  TangoNode ny_;
  TangoPairing pairing_;
};

TEST_F(ReportIngestTest, GenuineEnvelopeAccepted) {
  const auto wire = genuine_envelope(1);
  EXPECT_TRUE(la_.ingest_report_wire(wire));
  const PathReport* r = la_.registry().report(1);
  ASSERT_NE(r, nullptr);
  EXPECT_GT(r->samples, 0u);
  EXPECT_EQ(la_.report_forged(), 0u);
  EXPECT_EQ(la_.compliance().violations(), 0u);
}

TEST_F(ReportIngestTest, GarbageAndWrongKeyDropAsForged) {
  EXPECT_FALSE(la_.ingest_report_wire(std::vector<std::uint8_t>(64, 0xAB)));
  EXPECT_EQ(la_.report_forged(), 1u);

  // A parseable envelope signed with the wrong key.
  net::ReportEnvelope forged;
  forged.path_id = 1;
  forged.report_seq = 0;
  forged.samples = 1;
  forged.flags |= net::ReportEnvelope::kFlagAuthenticated;
  forged.auth_tag = net::report_auth_tag(kWrongKey, forged);
  net::ByteWriter w;
  forged.serialize(w);
  EXPECT_FALSE(la_.ingest_report_wire(w.view()));
  EXPECT_EQ(la_.report_forged(), 2u);

  // An unauthenticated envelope when the node requires a key.
  net::ReportEnvelope stripped;
  stripped.path_id = 1;
  stripped.samples = 1;
  net::ByteWriter w2;
  stripped.serialize(w2);
  EXPECT_FALSE(la_.ingest_report_wire(w2.view()));
  EXPECT_EQ(la_.report_forged(), 3u);

  EXPECT_EQ(la_.registry().report(1), nullptr) << "no forged report was applied";
}

TEST_F(ReportIngestTest, ReplayedAndStaleEnvelopesDropped) {
  const auto first = genuine_envelope(1);
  const auto second = genuine_envelope(1);
  ASSERT_TRUE(la_.ingest_report_wire(first));
  ASSERT_TRUE(la_.ingest_report_wire(second));
  const PathReport applied = *la_.registry().report(1);

  EXPECT_FALSE(la_.ingest_report_wire(second)) << "re-delivery of the last accepted";
  EXPECT_EQ(la_.report_replayed(), 1u);
  EXPECT_FALSE(la_.ingest_report_wire(first)) << "older than the last accepted";
  EXPECT_EQ(la_.report_stale(), 1u);
  EXPECT_EQ(la_.report_forged(), 0u) << "both carried genuine tags";

  const PathReport* current = la_.registry().report(1);
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->samples, applied.samples);
  EXPECT_EQ(current->updated_at, applied.updated_at) << "dropped reports change nothing";
}

TEST_F(ReportIngestTest, SequenceGapsAreCountedAsSuppressionEvidence) {
  const auto a = genuine_envelope(1);
  const auto b = genuine_envelope(1);  // suppressed by the adversary
  const auto c = genuine_envelope(1);  // suppressed by the adversary
  const auto d = genuine_envelope(1);
  ASSERT_TRUE(la_.ingest_report_wire(a));
  EXPECT_EQ(la_.report_gaps(), 0u);
  ASSERT_TRUE(la_.ingest_report_wire(d));
  EXPECT_EQ(la_.report_gaps(), 2u) << "sequences of b and c never arrived";
  (void)b;
  (void)c;
}

TEST_F(ReportIngestTest, LyingPeerIsQuarantinedAndDisbelieved) {
  // NY claims far more measured packets on path 1 than LA ever sent on it.
  net::ReportEnvelope lie;
  lie.path_id = 1;
  lie.report_seq = 0;
  lie.owd_ewma_ms = 1.0;  // "I'm the best path, send everything here"
  lie.samples = la_.dp().sender().next_sequence(1) + 1'000'000;
  lie.lost = 0;
  lie.updated_at = wan_.now();
  lie.flags |= net::ReportEnvelope::kFlagAuthenticated;
  lie.auth_tag = net::report_auth_tag(kKey, lie);  // the key is shared: the tag is valid
  net::ByteWriter w;
  lie.serialize(w);

  EXPECT_FALSE(la_.ingest_report_wire(w.view()));
  EXPECT_EQ(la_.compliance().violations(), 1u);
  EXPECT_TRUE(la_.compliance().flagged(1));
  EXPECT_EQ(la_.registry().report(1), nullptr) << "the lie was never applied";
  EXPECT_EQ(la_.health().state(1), PathHealth::quarantined)
      << "a path whose reports cannot be believed is unusable";
  EXPECT_EQ(la_.report_forged(), 0u) << "the envelope itself was authentic";
}

TEST_F(ReportIngestTest, PairingFeedbackRunsCleanOverTheWire) {
  // The full loop — build, serialize, delay, ingest — with nothing hostile:
  // every envelope must be accepted and no drop counter may move.
  pairing_.start();
  la_.start_probing(10 * sim::kMillisecond);
  ny_.start_probing(10 * sim::kMillisecond);
  wan_.events().run_until(5 * sim::kSecond);
  pairing_.stop();
  la_.stop_probing();
  ny_.stop_probing();
  wan_.events().run_all();

  EXPECT_GT(pairing_.reports_delivered(), 0u);
  for (const TangoNode* node : {&la_, &ny_}) {
    EXPECT_EQ(node->report_forged(), 0u);
    EXPECT_EQ(node->report_replayed(), 0u);
    EXPECT_EQ(node->report_stale(), 0u);
    EXPECT_EQ(node->report_gaps(), 0u);
    EXPECT_EQ(node->compliance().violations(), 0u);
  }
  for (PathId id = 1; id <= 4; ++id) {
    const PathReport* r = ny_.registry().report(id);
    ASSERT_NE(r, nullptr) << "path " << id;
    EXPECT_GT(r->samples, 0u);
  }
}

TEST_F(ReportIngestTest, SuppressionHookStarvesTheSenderDetectably) {
  PairingOptions options;
  struct Ctx {
    std::uint64_t count = 0;
  } ctx;
  options.suppress_report = [](void* c, PathId, std::span<const std::uint8_t>) {
    return ++static_cast<Ctx*>(c)->count % 3 == 0;  // swallow every third report
  };
  options.suppress_ctx = &ctx;
  TangoPairing pairing{wan_, la_, ny_, options};
  pairing.start();
  la_.start_probing(10 * sim::kMillisecond);
  ny_.start_probing(10 * sim::kMillisecond);
  wan_.events().run_until(5 * sim::kSecond);
  pairing.stop();
  la_.stop_probing();
  ny_.stop_probing();
  wan_.events().run_all();

  EXPECT_GT(pairing.reports_suppressed(), 0u);
  const std::uint64_t gaps = la_.report_gaps() + ny_.report_gaps();
  EXPECT_GT(gaps, 0u) << "suppression must surface as sequence gaps";
  EXPECT_LE(gaps, pairing.reports_suppressed())
      << "every gap is a suppressed report (the tail can hide at most one per path)";
}

}  // namespace
}  // namespace tango::core
