// The §4.1 discovery algorithm must reproduce Fig. 3 exactly on the Vultr
// scenario, and behave sanely on edge-case topologies.
#include "core/discovery.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

DiscoveryRequest la_to_ny_request(const topo::VultrScenario& s) {
  return DiscoveryRequest{
      .destination = kServerNy,
      .source = kServerLa,
      .prefix_pool = {s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
      .edge_asns = {kAsnVultr, kAsnServerLa, kAsnServerNy}};
}

DiscoveryRequest ny_to_la_request(const topo::VultrScenario& s) {
  return DiscoveryRequest{
      .destination = kServerLa,
      .source = kServerNy,
      .prefix_pool = {s.plan.la_tunnel.begin(), s.plan.la_tunnel.end()},
      .edge_asns = {kAsnVultr, kAsnServerLa, kAsnServerNy}};
}

TEST(SuppressionTarget, PicksTransitAdjacentToDestination) {
  const std::vector<bgp::Asn> edges{20473, 64512};
  EXPECT_EQ(suppression_target(bgp::AsPath{20473, 2914, 20473}, edges), 2914u);
  EXPECT_EQ(suppression_target(bgp::AsPath{20473, 2914, 174, 20473}, edges), 174u);
  EXPECT_EQ(suppression_target(bgp::AsPath{2914, 20473}, edges), 2914u);
  EXPECT_FALSE(suppression_target(bgp::AsPath{20473, 64512}, edges).has_value());
  EXPECT_FALSE(suppression_target(bgp::AsPath{}, edges).has_value());
}

TEST(Discovery, ReproducesFig3LaToNy) {
  // Paper: traffic LA->NY can ride (i) NTT (ii) Telia (iii) GTT
  // (iv) NTT+Cogent, in Vultr preference order.
  topo::VultrScenario s = topo::make_vultr_scenario();
  DiscoveryResult r = discover_paths(s.topo, la_to_ny_request(s));

  ASSERT_EQ(r.paths.size(), 4u);
  EXPECT_EQ(r.paths[0].label, "NTT");
  EXPECT_EQ(r.paths[1].label, "Telia");
  EXPECT_EQ(r.paths[2].label, "GTT");
  EXPECT_EQ(r.paths[3].label, "NTT Cogent");
  EXPECT_TRUE(r.exhausted) << "termination must be by unreachability, not pool exhaustion";

  // AS paths as the LA server sees them.
  EXPECT_EQ(r.paths[0].as_path, (bgp::AsPath{20473, 2914, 20473}));
  EXPECT_EQ(r.paths[1].as_path, (bgp::AsPath{20473, 1299, 20473}));
  EXPECT_EQ(r.paths[2].as_path, (bgp::AsPath{20473, 3257, 20473}));
  EXPECT_EQ(r.paths[3].as_path, (bgp::AsPath{20473, 2914, 174, 20473}));

  // Community sets grow one suppression at a time (paper's iteration).
  EXPECT_TRUE(r.paths[0].communities.empty());
  EXPECT_EQ(r.paths[1].communities,
            (bgp::CommunitySet{bgp::action::do_not_announce_to(kAsnNtt)}));
  EXPECT_EQ(r.paths[2].communities,
            (bgp::CommunitySet{bgp::action::do_not_announce_to(kAsnNtt),
                               bgp::action::do_not_announce_to(kAsnTelia)}));
  EXPECT_EQ(r.paths[3].communities,
            (bgp::CommunitySet{bgp::action::do_not_announce_to(kAsnNtt),
                               bgp::action::do_not_announce_to(kAsnTelia),
                               bgp::action::do_not_announce_to(kAsnGtt)}));

  // Steps: 4 successes + 1 unreachable probe = 5, last has no observation.
  ASSERT_EQ(r.steps.size(), 5u);
  EXPECT_FALSE(r.steps.back().observed.has_value());
  EXPECT_GT(r.bgp_messages, 0u);

  // Path ids are sequential from 1.
  for (std::size_t i = 0; i < r.paths.size(); ++i) {
    EXPECT_EQ(r.paths[i].id, static_cast<PathId>(i + 1));
  }
}

TEST(Discovery, ReproducesFig3NyToLa) {
  // Paper: NY->LA rides (i) NTT (ii) Telia (iii) GTT (iv) Level3.
  topo::VultrScenario s = topo::make_vultr_scenario();
  DiscoveryResult r = discover_paths(s.topo, ny_to_la_request(s));

  ASSERT_EQ(r.paths.size(), 4u);
  EXPECT_EQ(r.paths[0].label, "NTT");
  EXPECT_EQ(r.paths[1].label, "Telia");
  EXPECT_EQ(r.paths[2].label, "GTT");
  EXPECT_EQ(r.paths[3].label, "NTT Level3");
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.paths[3].as_path, (bgp::AsPath{20473, 2914, 3356, 20473}));
}

TEST(Discovery, SteadyStateLeavesAllPathsUsable) {
  // After discovery, every recorded prefix must still be reachable from the
  // source over its own distinct route (prefixes-as-routes steady state).
  topo::VultrScenario s = topo::make_vultr_scenario();
  DiscoveryResult r = discover_paths(s.topo, la_to_ny_request(s));

  std::set<std::string> distinct_paths;
  for (const DiscoveredPath& p : r.paths) {
    const bgp::Route* best = s.topo.bgp().best_route(kServerLa, net::Prefix{p.prefix});
    ASSERT_NE(best, nullptr) << p.to_string();
    EXPECT_EQ(best->as_path, p.as_path)
        << "steady-state route must match what discovery recorded";
    distinct_paths.insert(best->as_path.to_string());
  }
  EXPECT_EQ(distinct_paths.size(), 4u) << "all four paths simultaneously distinct";
}

TEST(Discovery, BothDirectionsCompose) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  DiscoveryResult fwd = discover_paths(s.topo, la_to_ny_request(s));
  DiscoveryResult rev = discover_paths(s.topo, ny_to_la_request(s));
  EXPECT_EQ(fwd.paths.size(), 4u);
  EXPECT_EQ(rev.paths.size(), 4u);
  // Forward steady state must survive the reverse run.
  for (const DiscoveredPath& p : fwd.paths) {
    EXPECT_NE(s.topo.bgp().best_route(kServerLa, net::Prefix{p.prefix}), nullptr);
  }
}

TEST(Discovery, PoolExhaustionStopsEarly) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  DiscoveryRequest req = la_to_ny_request(s);
  req.prefix_pool.resize(2);  // only two prefixes available
  DiscoveryResult r = discover_paths(s.topo, req);
  EXPECT_EQ(r.paths.size(), 2u);
  EXPECT_FALSE(r.exhausted);
  EXPECT_EQ(r.paths[0].label, "NTT");
  EXPECT_EQ(r.paths[1].label, "Telia");
}

TEST(Discovery, FirstIdOffsetsPathIds) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  DiscoveryResult r = discover_paths(s.topo, la_to_ny_request(s), /*first_id=*/10);
  ASSERT_EQ(r.paths.size(), 4u);
  EXPECT_EQ(r.paths[0].id, 10);
  EXPECT_EQ(r.paths[3].id, 13);
}

TEST(Discovery, SingleHomedSingleTransitFindsOnePath) {
  // Minimal world: origin -> provider -> observer.  One path, then
  // suppression kills reachability.
  topo::Topology t;
  t.add_router(1, 100, "transit");
  t.add_router(2, 200, "dst");
  t.add_router(3, 300, "src");
  t.add_transit(1, 2, topo::LinkProfile{}, topo::LinkProfile{});
  t.add_transit(1, 3, topo::LinkProfile{}, topo::LinkProfile{});

  DiscoveryRequest req{.destination = 2,
                       .source = 3,
                       .prefix_pool = {*net::Ipv6Prefix::parse("2001:db8:1::/48"),
                                       *net::Ipv6Prefix::parse("2001:db8:2::/48")},
                       .edge_asns = {200, 300}};
  DiscoveryResult r = discover_paths(t, req);
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].as_path, (bgp::AsPath{100, 200}));
  EXPECT_TRUE(r.exhausted);
}

TEST(Discovery, UnreachableDestinationYieldsNothing) {
  topo::Topology t;
  t.add_router(1, 100, "isolated-dst");
  t.add_router(2, 200, "isolated-src");
  DiscoveryRequest req{.destination = 1,
                       .source = 2,
                       .prefix_pool = {*net::Ipv6Prefix::parse("2001:db8:1::/48")},
                       .edge_asns = {}};
  DiscoveryResult r = discover_paths(t, req);
  EXPECT_TRUE(r.paths.empty());
  EXPECT_TRUE(r.exhausted);
}

TEST(Discovery, StopsWhenProviderIgnoresCommunities) {
  // Providers that ignore action communities (and an edge router whose own
  // export filter does not honor them either): suppression has no effect,
  // the observed route repeats, and discovery stops without duplicates.
  topo::Topology t;
  bgp::SpeakerOptions deaf{.honors_action_communities = false};
  t.add_router(1, 100, "deaf-transit", deaf);
  t.add_router(2, 200, "dst", deaf);
  t.add_router(3, 300, "src");
  t.add_router(4, 400, "transit2", deaf);
  t.add_transit(1, 2, topo::LinkProfile{}, topo::LinkProfile{});
  t.add_transit(4, 2, topo::LinkProfile{}, topo::LinkProfile{});
  t.add_transit(1, 3, topo::LinkProfile{}, topo::LinkProfile{});
  t.add_transit(4, 3, topo::LinkProfile{}, topo::LinkProfile{});

  DiscoveryRequest req{.destination = 2,
                       .source = 3,
                       .prefix_pool = {*net::Ipv6Prefix::parse("2001:db8:1::/48"),
                                       *net::Ipv6Prefix::parse("2001:db8:2::/48"),
                                       *net::Ipv6Prefix::parse("2001:db8:3::/48")},
                       .edge_asns = {200, 300}};
  DiscoveryResult r = discover_paths(t, req);
  EXPECT_EQ(r.paths.size(), 1u) << "no duplicate paths when suppression is ignored";
  EXPECT_FALSE(r.exhausted);
}

}  // namespace
}  // namespace tango::core
