// Tango-of-N (paper §6): three sites, six ordered pairs, pairwise discovery
// with coordinated path-id ranges and pool slicing, per-peer routing.
#include "core/mesh.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "sim/events.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

NodeConfig site_config(const topo::ThreeSiteScenario::SitePlan& plan) {
  return NodeConfig{.router = plan.server,
                    .host_prefix = plan.hosts,
                    .tunnel_prefix_pool = plan.tunnel_pool,
                    .edge_asns = {kAsnVultr, plan.server_asn},
                    .keep_series = false};
}

class MeshTest : public ::testing::Test {
 protected:
  MeshTest()
      : s_{topo::make_three_site_scenario()},
        wan_{s_.topo, sim::Rng{33}},
        la_{s_.topo, wan_, site_config(s_.la)},
        ny_{s_.topo, wan_, site_config(s_.ny)},
        ch_{s_.topo, wan_, site_config(s_.ch)},
        mesh_{wan_} {
    mesh_.add_site(la_);
    mesh_.add_site(ny_);
    mesh_.add_site(ch_);
  }

  topo::ThreeSiteScenario s_;
  sim::Wan wan_;
  TangoNode la_;
  TangoNode ny_;
  TangoNode ch_;
  TangoMesh mesh_;
};

TEST_F(MeshTest, EstablishDiscoversEveryOrderedPair) {
  auto results = mesh_.establish();
  ASSERT_EQ(results.size(), 6u);  // 3 * 2 ordered pairs

  // Each node knows two peers.
  EXPECT_EQ(la_.peers().size(), 2u);
  EXPECT_EQ(ny_.peers().size(), 2u);
  EXPECT_EQ(ch_.peers().size(), 2u);

  // LA->NY and NY->LA still find the paper's 4 paths; pairs involving
  // Chicago find 3 (three transits at the CH PoP).
  EXPECT_EQ(la_.paths_to(kServerNy).size(), 4u);
  EXPECT_EQ(ny_.paths_to(kServerLa).size(), 4u);
  EXPECT_EQ(la_.paths_to(kServerCh).size(), 3u);
  EXPECT_EQ(ch_.paths_to(kServerLa).size(), 4u);
  EXPECT_EQ(ny_.paths_to(kServerCh).size(), 3u);
  EXPECT_EQ(ch_.paths_to(kServerNy).size(), 4u);
}

TEST_F(MeshTest, PathIdRangesAreDisjoint) {
  mesh_.establish();
  std::set<PathId> seen;
  for (TangoNode* node : {&la_, &ny_, &ch_}) {
    for (bgp::RouterId peer : node->peers()) {
      for (PathId id : node->paths_to(peer)) {
        EXPECT_TRUE(seen.insert(id).second) << "duplicate path id " << id;
      }
    }
  }
  EXPECT_EQ(seen.size(), 4u + 4u + 3u + 4u + 3u + 4u);
}

TEST_F(MeshTest, PoolSlicesDoNotCollide) {
  mesh_.establish();
  // Every (destination prefix) is used by at most one ordered pair.
  std::set<std::string> used;
  for (TangoNode* node : {&la_, &ny_, &ch_}) {
    for (bgp::RouterId peer : node->peers()) {
      for (PathId id : node->paths_to(peer)) {
        const DiscoveredPath* p = node->registry().find(id);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(used.insert(p->prefix.to_string()).second)
            << "prefix reused across pairs: " << p->prefix.to_string();
      }
    }
  }
}

TEST_F(MeshTest, TrafficFlowsOnEveryPairSimultaneously) {
  mesh_.establish();
  std::map<bgp::RouterId, std::uint64_t> received;
  auto count_at = [&received](TangoNode& node, bgp::RouterId id) {
    node.dp().set_host_handler(
        [&received, id](const net::Packet&, const std::optional<dataplane::ReceiveInfo>& info) {
          if (info) ++received[id];
        });
  };
  count_at(la_, kServerLa);
  count_at(ny_, kServerNy);
  count_at(ch_, kServerCh);

  const std::vector<std::uint8_t> payload{1, 2, 3};
  auto send = [&payload, this](TangoNode& from, TangoNode& to) {
    from.dp().send_from_host(net::make_udp_packet(from.host_address(1), to.host_address(1),
                                                  1000, 2000, payload));
  };
  send(la_, ny_);
  send(la_, ch_);
  send(ny_, la_);
  send(ny_, ch_);
  send(ch_, la_);
  send(ch_, ny_);
  wan_.events().run_all();

  EXPECT_EQ(received[kServerLa], 2u);
  EXPECT_EQ(received[kServerNy], 2u);
  EXPECT_EQ(received[kServerCh], 2u);
}

TEST_F(MeshTest, PerPeerPoliciesConvergeIndependently) {
  mesh_.establish();
  la_.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  ny_.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  ch_.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  mesh_.start();
  mesh_.start_probing(20 * sim::kMillisecond);

  wan_.events().run_until(5 * sim::kSecond);
  mesh_.stop();
  mesh_.stop_probing();
  wan_.events().run_all();

  EXPECT_GT(mesh_.reports_delivered(), 0u);

  // NY->LA should sit on GTT; the GTT id for that pair is the third path
  // discovered by NY toward LA.
  const auto ny_to_la = ny_.paths_to(kServerLa);
  ASSERT_EQ(ny_to_la.size(), 4u);
  EXPECT_EQ(ny_.dp().active_path(kServerLa), ny_to_la[2])
      << "NY->LA must pick GTT (third discovered)";

  // NY->CH: Chicago's transits are NTT(17.5) / Telia(19) / Cogent(21+):
  // NTT is both default and fastest, so the active path stays the first.
  const auto ny_to_ch = ny_.paths_to(kServerCh);
  ASSERT_EQ(ny_to_ch.size(), 3u);
  EXPECT_EQ(ny_.dp().active_path(kServerCh), ny_to_ch[0])
      << "NY->CH: NTT is both default and fastest";

  // Per-pair measurements exist for every ordered pair.
  for (TangoNode* node : {&la_, &ny_, &ch_}) {
    for (bgp::RouterId peer : node->peers()) {
      for (PathId id : node->paths_to(peer)) {
        EXPECT_NE(node->registry().report(id), nullptr)
            << "missing report for path " << id;
      }
    }
  }
}

TEST_F(MeshTest, AddSiteAfterEstablishThrows) {
  mesh_.establish();
  TangoNode extra{s_.topo, wan_, site_config(s_.ch)};  // would double-attach anyway
  EXPECT_THROW(mesh_.add_site(extra), std::logic_error);
}

TEST(MeshValidation, NeedsTwoSites) {
  topo::ThreeSiteScenario s = topo::make_three_site_scenario();
  sim::Wan wan{s.topo, sim::Rng{1}};
  TangoMesh mesh{wan};
  EXPECT_THROW(mesh.establish(), std::logic_error);

  TangoNode la{s.topo, wan, site_config(s.la)};
  mesh.add_site(la);
  EXPECT_THROW(mesh.establish(), std::logic_error);
}

// pool_slice must partition the pool exactly: every prefix in exactly one
// slice, sizes differing by at most one.  The old `pool.size() / slices`
// arithmetic silently dropped the remainder prefixes — a site with a
// 5-prefix pool and 2 inbound pairs exposed only 4 of its 5 routes.
TEST(PoolSlice, PartitionsEveryPoolExactly) {
  const net::Ipv6Prefix root = net::Ipv6Prefix::parse("2001:db8::/32").value();
  for (std::size_t pool_size = 1; pool_size <= 40; ++pool_size) {
    std::vector<net::Ipv6Prefix> pool;
    for (std::size_t i = 0; i < pool_size; ++i) pool.push_back(root.subnet(48, i));
    for (std::size_t slices = 1; slices <= std::min<std::size_t>(8, pool_size); ++slices) {
      std::vector<net::Ipv6Prefix> joined;
      std::size_t min_size = pool_size;
      std::size_t max_size = 0;
      for (std::size_t rank = 0; rank < slices; ++rank) {
        const auto slice = TangoMesh::pool_slice(pool, slices, rank);
        min_size = std::min(min_size, slice.size());
        max_size = std::max(max_size, slice.size());
        joined.insert(joined.end(), slice.begin(), slice.end());
      }
      EXPECT_EQ(joined, pool) << pool_size << " prefixes across " << slices << " slices";
      EXPECT_LE(max_size - min_size, 1u) << "unbalanced slices";
    }
  }
}

TEST(PoolSlice, EmptySliceAndBadRankThrow) {
  const net::Ipv6Prefix root = net::Ipv6Prefix::parse("2001:db8::/32").value();
  const std::vector<net::Ipv6Prefix> pool{root.subnet(48, 0), root.subnet(48, 1)};
  // 2 prefixes across 3 consumers: ranks 0 and 1 get one each, rank 2 would
  // be empty — refuse instead of handing a direction nothing to announce.
  EXPECT_EQ(TangoMesh::pool_slice(pool, 3, 0).size(), 1u);
  EXPECT_EQ(TangoMesh::pool_slice(pool, 3, 1).size(), 1u);
  EXPECT_THROW(TangoMesh::pool_slice(pool, 3, 2), std::logic_error);
  EXPECT_THROW(TangoMesh::pool_slice(pool, 0, 0), std::logic_error);
  EXPECT_THROW(TangoMesh::pool_slice(pool, 2, 2), std::logic_error);
}

// Establish-level remainder check: LA's pool trimmed to 5 prefixes across 2
// inbound pairs used to slice as 2+2 (prefix 5 unreachable by any pair);
// now it slices 3+2 and the first inbound direction discovers a third path.
TEST(MeshValidation, RemainderPrefixesAreNotDropped) {
  topo::ThreeSiteScenario s = topo::make_three_site_scenario();
  sim::Wan wan{s.topo, sim::Rng{1}};
  NodeConfig odd = site_config(s.la);
  odd.tunnel_prefix_pool.resize(5);
  TangoNode la{s.topo, wan, odd};
  TangoNode ny{s.topo, wan, site_config(s.ny)};
  TangoNode ch{s.topo, wan, site_config(s.ch)};
  TangoMesh mesh{wan};
  mesh.add_site(la);
  mesh.add_site(ny);
  mesh.add_site(ch);
  mesh.establish();

  // NY ranks first among LA's inbound pairs: 3-prefix slice, 3 paths
  // (4 exist toward LA; the old 2-prefix slice capped it at 2).
  EXPECT_EQ(ny.paths_to(kServerLa).size(), 3u);
  // CH gets the 2-prefix slice.
  EXPECT_EQ(ch.paths_to(kServerLa).size(), 2u);
  // Together the two slices consume the whole 5-prefix pool.
  std::set<std::string> used;
  for (PathId id : ny.paths_to(kServerLa)) used.insert(ny.registry().find(id)->prefix.to_string());
  for (PathId id : ch.paths_to(kServerLa)) used.insert(ch.registry().find(id)->prefix.to_string());
  EXPECT_EQ(used.size(), 5u) << "a pool prefix was dropped by slicing";
}

TEST(MeshValidation, PoolTooSmallThrows) {
  topo::ThreeSiteScenario s = topo::make_three_site_scenario();
  sim::Wan wan{s.topo, sim::Rng{1}};
  NodeConfig tiny = site_config(s.la);
  tiny.tunnel_prefix_pool.resize(1);  // 1 prefix cannot serve 2 inbound pairs
  TangoNode la{s.topo, wan, tiny};
  TangoNode ny{s.topo, wan, site_config(s.ny)};
  TangoNode ch{s.topo, wan, site_config(s.ch)};
  TangoMesh mesh{wan};
  mesh.add_site(la);
  mesh.add_site(ny);
  mesh.add_site(ch);
  EXPECT_THROW(mesh.establish(), std::logic_error);
}

}  // namespace
}  // namespace tango::core
