// Tango-of-N (paper §6): three sites, six ordered pairs, pairwise discovery
// with coordinated path-id ranges and pool slicing, per-peer routing.
#include "core/mesh.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/events.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

NodeConfig site_config(const topo::ThreeSiteScenario::SitePlan& plan) {
  return NodeConfig{.router = plan.server,
                    .host_prefix = plan.hosts,
                    .tunnel_prefix_pool = plan.tunnel_pool,
                    .edge_asns = {kAsnVultr, plan.server_asn},
                    .keep_series = false};
}

class MeshTest : public ::testing::Test {
 protected:
  MeshTest()
      : s_{topo::make_three_site_scenario()},
        wan_{s_.topo, sim::Rng{33}},
        la_{s_.topo, wan_, site_config(s_.la)},
        ny_{s_.topo, wan_, site_config(s_.ny)},
        ch_{s_.topo, wan_, site_config(s_.ch)},
        mesh_{wan_} {
    mesh_.add_site(la_);
    mesh_.add_site(ny_);
    mesh_.add_site(ch_);
  }

  topo::ThreeSiteScenario s_;
  sim::Wan wan_;
  TangoNode la_;
  TangoNode ny_;
  TangoNode ch_;
  TangoMesh mesh_;
};

TEST_F(MeshTest, EstablishDiscoversEveryOrderedPair) {
  auto results = mesh_.establish();
  ASSERT_EQ(results.size(), 6u);  // 3 * 2 ordered pairs

  // Each node knows two peers.
  EXPECT_EQ(la_.peers().size(), 2u);
  EXPECT_EQ(ny_.peers().size(), 2u);
  EXPECT_EQ(ch_.peers().size(), 2u);

  // LA->NY and NY->LA still find the paper's 4 paths; pairs involving
  // Chicago find 3 (three transits at the CH PoP).
  EXPECT_EQ(la_.paths_to(kServerNy).size(), 4u);
  EXPECT_EQ(ny_.paths_to(kServerLa).size(), 4u);
  EXPECT_EQ(la_.paths_to(kServerCh).size(), 3u);
  EXPECT_EQ(ch_.paths_to(kServerLa).size(), 4u);
  EXPECT_EQ(ny_.paths_to(kServerCh).size(), 3u);
  EXPECT_EQ(ch_.paths_to(kServerNy).size(), 4u);
}

TEST_F(MeshTest, PathIdRangesAreDisjoint) {
  mesh_.establish();
  std::set<PathId> seen;
  for (TangoNode* node : {&la_, &ny_, &ch_}) {
    for (bgp::RouterId peer : node->peers()) {
      for (PathId id : node->paths_to(peer)) {
        EXPECT_TRUE(seen.insert(id).second) << "duplicate path id " << id;
      }
    }
  }
  EXPECT_EQ(seen.size(), 4u + 4u + 3u + 4u + 3u + 4u);
}

TEST_F(MeshTest, PoolSlicesDoNotCollide) {
  mesh_.establish();
  // Every (destination prefix) is used by at most one ordered pair.
  std::set<std::string> used;
  for (TangoNode* node : {&la_, &ny_, &ch_}) {
    for (bgp::RouterId peer : node->peers()) {
      for (PathId id : node->paths_to(peer)) {
        const DiscoveredPath* p = node->registry().find(id);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(used.insert(p->prefix.to_string()).second)
            << "prefix reused across pairs: " << p->prefix.to_string();
      }
    }
  }
}

TEST_F(MeshTest, TrafficFlowsOnEveryPairSimultaneously) {
  mesh_.establish();
  std::map<bgp::RouterId, std::uint64_t> received;
  auto count_at = [&received](TangoNode& node, bgp::RouterId id) {
    node.dp().set_host_handler(
        [&received, id](const net::Packet&, const std::optional<dataplane::ReceiveInfo>& info) {
          if (info) ++received[id];
        });
  };
  count_at(la_, kServerLa);
  count_at(ny_, kServerNy);
  count_at(ch_, kServerCh);

  const std::vector<std::uint8_t> payload{1, 2, 3};
  auto send = [&payload, this](TangoNode& from, TangoNode& to) {
    from.dp().send_from_host(net::make_udp_packet(from.host_address(1), to.host_address(1),
                                                  1000, 2000, payload));
  };
  send(la_, ny_);
  send(la_, ch_);
  send(ny_, la_);
  send(ny_, ch_);
  send(ch_, la_);
  send(ch_, ny_);
  wan_.events().run_all();

  EXPECT_EQ(received[kServerLa], 2u);
  EXPECT_EQ(received[kServerNy], 2u);
  EXPECT_EQ(received[kServerCh], 2u);
}

TEST_F(MeshTest, PerPeerPoliciesConvergeIndependently) {
  mesh_.establish();
  la_.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  ny_.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  ch_.set_policy(std::make_unique<HysteresisPolicy>(1.0));
  mesh_.start();
  mesh_.start_probing(20 * sim::kMillisecond);

  wan_.events().run_until(5 * sim::kSecond);
  mesh_.stop();
  mesh_.stop_probing();
  wan_.events().run_all();

  EXPECT_GT(mesh_.reports_delivered(), 0u);

  // NY->LA should sit on GTT; the GTT id for that pair is the third path
  // discovered by NY toward LA.
  const auto ny_to_la = ny_.paths_to(kServerLa);
  ASSERT_EQ(ny_to_la.size(), 4u);
  EXPECT_EQ(ny_.dp().active_path(kServerLa), ny_to_la[2])
      << "NY->LA must pick GTT (third discovered)";

  // NY->CH: Chicago's transits are NTT(17.5) / Telia(19) / Cogent(21+):
  // NTT is both default and fastest, so the active path stays the first.
  const auto ny_to_ch = ny_.paths_to(kServerCh);
  ASSERT_EQ(ny_to_ch.size(), 3u);
  EXPECT_EQ(ny_.dp().active_path(kServerCh), ny_to_ch[0])
      << "NY->CH: NTT is both default and fastest";

  // Per-pair measurements exist for every ordered pair.
  for (TangoNode* node : {&la_, &ny_, &ch_}) {
    for (bgp::RouterId peer : node->peers()) {
      for (PathId id : node->paths_to(peer)) {
        EXPECT_NE(node->registry().report(id), nullptr)
            << "missing report for path " << id;
      }
    }
  }
}

TEST_F(MeshTest, AddSiteAfterEstablishThrows) {
  mesh_.establish();
  TangoNode extra{s_.topo, wan_, site_config(s_.ch)};  // would double-attach anyway
  EXPECT_THROW(mesh_.add_site(extra), std::logic_error);
}

TEST(MeshValidation, NeedsTwoSites) {
  topo::ThreeSiteScenario s = topo::make_three_site_scenario();
  sim::Wan wan{s.topo, sim::Rng{1}};
  TangoMesh mesh{wan};
  EXPECT_THROW(mesh.establish(), std::logic_error);

  TangoNode la{s.topo, wan, site_config(s.la)};
  mesh.add_site(la);
  EXPECT_THROW(mesh.establish(), std::logic_error);
}

TEST(MeshValidation, PoolTooSmallThrows) {
  topo::ThreeSiteScenario s = topo::make_three_site_scenario();
  sim::Wan wan{s.topo, sim::Rng{1}};
  NodeConfig tiny = site_config(s.la);
  tiny.tunnel_prefix_pool.resize(1);  // 1 prefix cannot serve 2 inbound pairs
  TangoNode la{s.topo, wan, tiny};
  TangoNode ny{s.topo, wan, site_config(s.ny)};
  TangoNode ch{s.topo, wan, site_config(s.ch)};
  TangoMesh mesh{wan};
  mesh.add_site(la);
  mesh.add_site(ny);
  mesh.add_site(ch);
  EXPECT_THROW(mesh.establish(), std::logic_error);
}

}  // namespace
}  // namespace tango::core
