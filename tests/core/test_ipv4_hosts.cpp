// End-to-end IPv4 host addressing over IPv6 tunnels (paper §3: the host
// prefixes "can even be a different IP version").  The sites' hosts speak
// IPv4; the wide-area routes, tunnels and measurements are IPv6.
#include <gtest/gtest.h>

#include "core/pairing.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::core {
namespace {

using namespace topo::vultr;

TEST(Ipv4Hosts, TangoCarriesV4HostTrafficOverV6Tunnels) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  sim::Wan wan{s.topo, sim::Rng{12}};

  NodeConfig la_cfg{.router = kServerLa,
                    .host_prefix = s.plan.la_hosts,
                    .tunnel_prefix_pool = {s.plan.la_tunnel.begin(), s.plan.la_tunnel.end()},
                    .edge_asns = {kAsnVultr, kAsnServerLa}};
  NodeConfig ny_cfg{.router = kServerNy,
                    .host_prefix = s.plan.ny_hosts,
                    .tunnel_prefix_pool = {s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
                    .edge_asns = {kAsnVultr, kAsnServerNy}};
  TangoNode la{s.topo, wan, la_cfg};
  TangoNode ny{s.topo, wan, ny_cfg};
  TangoPairing pairing{wan, la, ny};
  pairing.establish();

  // NY's hosts also use an IPv4 block, announced over traditional BGP and
  // registered at LA's switch as a peer prefix.
  const net::Prefix ny_v4 = *net::Prefix::parse("198.51.100.0/24");
  s.topo.bgp().originate(kServerNy, ny_v4);
  wan.sync_fibs();
  la.dp().add_peer_prefix(ny_v4, kServerNy);

  std::vector<net::Packet> delivered;
  std::uint64_t measured = 0;
  ny.dp().set_host_handler(
      [&](const net::Packet& inner, const std::optional<dataplane::ReceiveInfo>& info) {
        delivered.push_back(inner);
        if (info) ++measured;
      });

  const std::vector<std::uint8_t> payload{0x42};
  const net::Packet v4 = net::make_udp4_packet(net::Ipv4Address{203, 0, 113, 5},
                                               net::Ipv4Address{198, 51, 100, 9}, 1000, 2000,
                                               payload);
  la.dp().send_from_host(v4);
  wan.events().run_all();

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered.front(), v4) << "IPv4 inner must arrive byte-identical";
  EXPECT_EQ(delivered.front().version(), 4);
  EXPECT_EQ(measured, 1u) << "the 4in6 packet was measured like any other";

  const dataplane::PathTracker* tracker = ny.dp().receiver().tracker(1);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->delay().lifetime().count(), 1u);
}

TEST(Ipv4Hosts, PlainV4ForwardingFollowsBgp) {
  // Without Tango: a bare IPv4 packet follows the v4 route end to end, TTL
  // decremented and header checksum kept valid at every hop.
  topo::VultrScenario s = topo::make_vultr_scenario();
  const net::Prefix ny_v4 = *net::Prefix::parse("198.51.100.0/24");
  s.topo.bgp().originate(kServerNy, ny_v4);
  sim::Wan wan{s.topo, sim::Rng{13}};

  std::vector<net::Packet> got;
  wan.attach(kServerNy, [&got](const net::Packet& p) { got.push_back(p); });
  wan.set_hop_observer([](bgp::RouterId, bgp::RouterId, const net::Packet& p) {
    // Every in-flight packet must still carry a valid header.
    EXPECT_TRUE(p.ip4().has_value());
  });

  const std::vector<std::uint8_t> payload{1};
  wan.send_from(kServerLa,
                net::make_udp4_packet(net::Ipv4Address{203, 0, 113, 5},
                                      net::Ipv4Address{198, 51, 100, 9}, 5, 6, payload,
                                      /*ttl=*/64));
  wan.events().run_all();

  ASSERT_EQ(got.size(), 1u);
  ASSERT_TRUE(got.front().ip4().has_value());
  EXPECT_EQ(got.front().ip4()->ttl, 64 - 4) << "one decrement per forwarding hop";
  EXPECT_NEAR(sim::to_ms(wan.now()), 37.1, 1.5) << "v4 rides the same NTT default";
}

TEST(Ipv4Hosts, V4TtlExpiryDrops) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  const net::Prefix ny_v4 = *net::Prefix::parse("198.51.100.0/24");
  s.topo.bgp().originate(kServerNy, ny_v4);
  sim::Wan wan{s.topo, sim::Rng{14}};

  const std::vector<std::uint8_t> payload{1};
  wan.send_from(kServerLa,
                net::make_udp4_packet(net::Ipv4Address{203, 0, 113, 5},
                                      net::Ipv4Address{198, 51, 100, 9}, 5, 6, payload,
                                      /*ttl=*/2));
  wan.events().run_all();
  EXPECT_EQ(wan.delivered(), 0u);
  EXPECT_EQ(wan.dropped(sim::DropReason::hop_limit), 1u);
}

}  // namespace
}  // namespace tango::core
