// Property tests: the discovery algorithm on randomized transit topologies.
//
// For any generated topology (one destination edge, one source edge, N
// transit providers with random tier-1 interconnects), both steering
// mechanisms must terminate and produce paths that are (a) real — each
// recorded AS path equals the live best route for its prefix, (b) distinct,
// and (c) in the case of communities, at most one per destination transit.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/discovery.hpp"

namespace tango::core {
namespace {

struct RandomWorld {
  topo::Topology topo;
  bgp::RouterId destination = 0;
  bgp::RouterId source = 0;
  std::size_t dst_transits = 0;
  std::vector<net::Ipv6Prefix> pool;
};

/// Builds: tier-1 clique of `n_transits`; destination edge homed to a random
/// subset; source edge homed to a (possibly different) random subset.
RandomWorld make_world(std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  RandomWorld w;
  const std::size_t n_transits = 2 + rng() % 5;  // 2..6

  const topo::LinkProfile link{};  // delays irrelevant for control-plane tests
  for (std::size_t i = 0; i < n_transits; ++i) {
    const auto id = static_cast<bgp::RouterId>(1 + i);
    w.topo.add_router(id, 100 + static_cast<bgp::Asn>(i),
                      std::string{"T"}.append(std::to_string(i)));
  }
  // Random tier-1 interconnects; always include a spanning chain so the
  // graph is connected.
  for (std::size_t i = 1; i < n_transits; ++i) {
    w.topo.add_peering(static_cast<bgp::RouterId>(i), static_cast<bgp::RouterId>(i + 1),
                       link, link);
  }
  for (std::size_t i = 0; i < n_transits; ++i) {
    for (std::size_t j = i + 2; j < n_transits; ++j) {
      if (rng() % 2 == 0) {
        w.topo.add_peering(static_cast<bgp::RouterId>(1 + i),
                           static_cast<bgp::RouterId>(1 + j), link, link);
      }
    }
  }

  w.destination = 100;
  w.source = 101;
  w.topo.add_router(w.destination, 65000, "dst");
  w.topo.add_router(w.source, 65001, "src");

  auto home = [&](bgp::RouterId edge) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < n_transits; ++i) {
      if (rng() % 2 == 0) {
        w.topo.add_transit(static_cast<bgp::RouterId>(1 + i), edge, link, link,
                           static_cast<std::uint32_t>(200 - i));
        ++count;
      }
    }
    if (count == 0) {  // at least single-homed
      w.topo.add_transit(1, edge, link, link, 200);
      count = 1;
    }
    return count;
  };
  w.dst_transits = home(w.destination);
  home(w.source);

  for (int i = 0; i < 8; ++i) {
    w.pool.push_back(*net::Ipv6Prefix::parse(
        std::string{"2001:db8:"}.append(std::to_string(i + 1)).append("::/48")));
  }
  return w;
}

class RandomTopology : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopology, CommunitiesDiscoveryInvariants) {
  RandomWorld w = make_world(GetParam());
  DiscoveryResult r = discover_paths(
      w.topo, DiscoveryRequest{.destination = w.destination,
                               .source = w.source,
                               .prefix_pool = w.pool,
                               .edge_asns = {65000, 65001},
                               .mechanism = SteeringMechanism::communities});

  // Terminates having found at least the default path, at most one path per
  // destination transit (each suppression removes one first-hop choice).
  ASSERT_GE(r.paths.size(), 1u);
  EXPECT_LE(r.paths.size(), w.dst_transits);
  EXPECT_TRUE(r.exhausted) << "8-prefix pool must outlast <= 6 transits";

  std::set<std::string> distinct;
  for (const DiscoveredPath& p : r.paths) {
    // Steady state: the recorded route is live right now.
    const bgp::Route* best = w.topo.bgp().best_route(w.source, net::Prefix{p.prefix});
    ASSERT_NE(best, nullptr) << p.to_string();
    EXPECT_EQ(best->as_path, p.as_path);
    EXPECT_TRUE(distinct.insert(p.as_path.to_string()).second)
        << "duplicate path " << p.to_string();
    // The suppression set never names an edge AS.
    for (const bgp::Community& c : p.communities.values()) {
      EXPECT_NE(c.value, 65000);
      EXPECT_NE(c.value, 65001);
    }
  }
}

TEST_P(RandomTopology, PoisoningDiscoveryInvariants) {
  RandomWorld w = make_world(GetParam());
  DiscoveryResult r = discover_paths(
      w.topo, DiscoveryRequest{.destination = w.destination,
                               .source = w.source,
                               .prefix_pool = w.pool,
                               .edge_asns = {65000, 65001},
                               .mechanism = SteeringMechanism::poisoning});

  ASSERT_GE(r.paths.size(), 1u);
  EXPECT_LE(r.paths.size(), w.dst_transits);

  std::set<std::string> distinct;
  for (const DiscoveredPath& p : r.paths) {
    const bgp::Route* best = w.topo.bgp().best_route(w.source, net::Prefix{p.prefix});
    ASSERT_NE(best, nullptr) << p.to_string();
    EXPECT_EQ(best->as_path, p.as_path);
    EXPECT_TRUE(distinct.insert(p.as_path.to_string()).second);
    EXPECT_TRUE(p.communities.empty());
  }

  // Both mechanisms agree on the default (first) path.
  RandomWorld w2 = make_world(GetParam());
  DiscoveryResult via_comm = discover_paths(
      w2.topo, DiscoveryRequest{.destination = w2.destination,
                                .source = w2.source,
                                .prefix_pool = w2.pool,
                                .edge_asns = {65000, 65001}});
  ASSERT_FALSE(via_comm.paths.empty());
  EXPECT_EQ(r.paths.front().as_path, via_comm.paths.front().as_path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace tango::core
