#include "core/config.hpp"

#include <gtest/gtest.h>

namespace tango::core {
namespace {

TangoConfig sample_config() {
  TangoConfig config;
  config.peer_host_prefix = *net::Ipv6Prefix::parse("2620:110:901b::/48");
  config.tunnels.push_back(TunnelConfigEntry{
      .tunnel = {.id = 1,
                 .label = "NTT",
                 .local_endpoint = *net::Ipv6Address::parse("2620:110:9001::1"),
                 .remote_endpoint = *net::Ipv6Address::parse("2620:110:9011::1"),
                 .remote_prefix = *net::Ipv6Prefix::parse("2620:110:9011::/48"),
                 .udp_src_port = 49153},
      .communities = {}});
  config.tunnels.push_back(TunnelConfigEntry{
      .tunnel = {.id = 4,
                 .label = "NTT Cogent",
                 .local_endpoint = *net::Ipv6Address::parse("2620:110:9004::1"),
                 .remote_endpoint = *net::Ipv6Address::parse("2620:110:9014::1"),
                 .remote_prefix = *net::Ipv6Prefix::parse("2620:110:9014::/48"),
                 .udp_src_port = 49156},
      .communities = *bgp::CommunitySet::parse("64600:1299 64600:2914 64600:3257")});
  return config;
}

TEST(Config, RenderContainsEveryField) {
  const std::string text = render_config(sample_config());
  EXPECT_NE(text.find("tango-config v1"), std::string::npos);
  EXPECT_NE(text.find("peer-host-prefix 2620:110:901b::/48"), std::string::npos);
  EXPECT_NE(text.find("tunnel 1 label \"NTT\""), std::string::npos);
  EXPECT_NE(text.find("label \"NTT Cogent\""), std::string::npos);
  EXPECT_NE(text.find("udp-src 49153"), std::string::npos);
  EXPECT_NE(text.find("communities \"64600:1299 64600:2914 64600:3257\""), std::string::npos);
}

TEST(Config, RoundTrips) {
  const TangoConfig original = sample_config();
  std::string error;
  auto parsed = parse_config(render_config(original), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, original);
}

TEST(Config, ParseToleratesCommentsAndBlankLines) {
  const std::string text =
      "tango-config v1\n"
      "# a comment\n"
      "\n"
      "peer-host-prefix 2620:110:901b::/48\n";
  auto parsed = parse_config(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->tunnels.empty());
}

TEST(Config, ParseRejectsMalformed) {
  std::string error;
  EXPECT_FALSE(parse_config("", &error).has_value());
  EXPECT_NE(error.find("empty"), std::string::npos);

  EXPECT_FALSE(parse_config("not-a-config\n", &error).has_value());

  // Missing peer prefix.
  EXPECT_FALSE(parse_config("tango-config v1\n", &error).has_value());
  EXPECT_NE(error.find("peer-host-prefix"), std::string::npos);

  // Unknown directive.
  EXPECT_FALSE(
      parse_config("tango-config v1\npeer-host-prefix 2620:110:901b::/48\nbogus x\n", &error)
          .has_value());

  // Bad tunnel lines.
  const std::string base = "tango-config v1\npeer-host-prefix 2620:110:901b::/48\n";
  EXPECT_FALSE(parse_config(base + "tunnel 1\n", &error).has_value());
  EXPECT_FALSE(parse_config(base +
                                "tunnel 999999 label \"x\" local ::1 remote ::2 prefix "
                                "2001:db8::/48 udp-src 1 communities \"\"\n",
                            &error)
                   .has_value());
  EXPECT_FALSE(parse_config(base +
                                "tunnel 1 label \"x\" local junk remote ::2 prefix "
                                "2001:db8::/48 udp-src 1 communities \"\"\n",
                            &error)
                   .has_value());
  EXPECT_FALSE(parse_config(base +
                                "tunnel 1 label \"x\" local ::1 remote ::2 prefix "
                                "2001:db8::/48 udp-src 99999 communities \"\"\n",
                            &error)
                   .has_value());
  EXPECT_FALSE(parse_config(base +
                                "tunnel 1 label \"x\" local ::1 remote ::2 prefix "
                                "2001:db8::/48 udp-src 1 communities \"junk\"\n",
                            &error)
                   .has_value());
  // Unbalanced quote.
  EXPECT_FALSE(parse_config(base + "tunnel 1 label \"x local ::1\n", &error).has_value());
}

TEST(Config, LabelsWithSpacesSurvive) {
  TangoConfig config;
  config.peer_host_prefix = *net::Ipv6Prefix::parse("2620:110:901b::/48");
  config.tunnels.push_back(TunnelConfigEntry{
      .tunnel = {.id = 2, .label = "NTT Level3 via peering", .udp_src_port = 1},
      .communities = {}});
  auto parsed = parse_config(render_config(config));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tunnels[0].tunnel.label, "NTT Level3 via peering");
}

}  // namespace
}  // namespace tango::core
