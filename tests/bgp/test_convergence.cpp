// Control-plane efficiency invariants: the Adj-RIB-Out deduplication must
// keep the message count minimal — re-announcing unchanged state costs
// nothing, and change notifications stay proportional to affected routers.
// (Tango's discovery toggles originations many times; a chatty control
// plane would be a real deployment cost.)
#include <gtest/gtest.h>

#include "bgp/network.hpp"
#include "core/discovery.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::bgp {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

TEST(Convergence, ReoriginationWithSameAttributesIsSilent) {
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_transit(1, 2);
  net.originate(2, pfx("2001:db8::/32"));

  const std::uint64_t before = net.total_messages();
  net.originate(2, pfx("2001:db8::/32"));  // identical attributes
  EXPECT_EQ(net.total_messages(), before)
      << "unchanged origination must not generate UPDATEs";
}

TEST(Convergence, AttributeChangeCostsOneUpdatePerSession) {
  // Line topology 1-2-3-4: origin at 4; flipping a community on the
  // origination must cost exactly one announce per session hop (3 total) —
  // no duplicate or withdraw/announce churn.
  BgpNetwork net;
  for (RouterId id = 1; id <= 4; ++id) net.add_router(id, 100 * id);
  net.add_transit(1, 2);
  net.add_transit(2, 3);
  net.add_transit(3, 4);
  net.originate(4, pfx("2001:db8::/32"));

  const std::uint64_t before = net.total_messages();
  net.originate(4, pfx("2001:db8::/32"), CommunitySet{Community{1, 1}});
  EXPECT_EQ(net.total_messages() - before, 3u);
}

TEST(Convergence, WithdrawCostsOneMessagePerSession) {
  BgpNetwork net;
  for (RouterId id = 1; id <= 4; ++id) net.add_router(id, 100 * id);
  net.add_transit(1, 2);
  net.add_transit(2, 3);
  net.add_transit(3, 4);
  net.originate(4, pfx("2001:db8::/32"));

  const std::uint64_t before = net.total_messages();
  net.withdraw(4, pfx("2001:db8::/32"));
  EXPECT_EQ(net.total_messages() - before, 3u);
}

TEST(Convergence, BestPathChangeDoesNotReExportIdenticalRoutes) {
  // Router 1 hears a prefix from two customers; when the preferred one
  // withdraws, 1 switches to the other — its *export* to a third party only
  // changes if the attributes changed.
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_router(3, 200);  // same ASN as 2: exports via either look identical
  net.add_router(4, 400);
  net.add_transit(1, 2);
  net.add_transit(1, 3);
  net.add_transit(4, 1);

  net.router(2).originate(pfx("2001:db8::/32"));
  net.router(3).originate(pfx("2001:db8::/32"));
  net.run_to_convergence();

  const Route* best = net.best_route(1, pfx("2001:db8::/32"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, 2u);  // lower router id tiebreak

  const std::uint64_t at_4_before = net.router(4).updates_processed();
  const std::uint64_t before = net.total_messages();
  net.withdraw(2, pfx("2001:db8::/32"));
  // 1's best flips to router 3, but the exported route (AS path "100 200")
  // is byte-identical: router 4 must hear NOTHING.  (Routers 2 and 3 do see
  // legitimate traffic: the split-horizon suppression toward the best-route
  // neighbor moves from 2 to 3.)
  const Route* after = net.best_route(1, pfx("2001:db8::/32"));
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->learned_from, 3u);
  EXPECT_EQ(net.router(4).updates_processed(), at_4_before)
      << "identical re-export must be suppressed (Adj-RIB-Out dedup)";
  // Total churn: withdraw 2->1, announce 1->2, withdraw 1->3.
  EXPECT_EQ(net.total_messages() - before, 3u);
}

TEST(Convergence, VultrScenarioDiscoveryCostIsBounded) {
  // The full Fig. 3 discovery costs ~112 messages per direction; regression-
  // guard it loosely so policy changes that cause churn get caught.
  topo::VultrScenario s = topo::make_vultr_scenario();
  const std::uint64_t before = s.topo.bgp().total_messages();
  tango::core::DiscoveryResult r = tango::core::discover_paths(
      s.topo, tango::core::DiscoveryRequest{
                  .destination = topo::vultr::kServerNy,
                  .source = topo::vultr::kServerLa,
                  .prefix_pool = {s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
                  .edge_asns = {topo::vultr::kAsnVultr, topo::vultr::kAsnServerLa,
                                topo::vultr::kAsnServerNy}});
  EXPECT_EQ(r.bgp_messages, s.topo.bgp().total_messages() - before);
  EXPECT_GT(r.bgp_messages, 0u);
  EXPECT_LT(r.bgp_messages, 300u) << "discovery churn regression";
}

TEST(Convergence, SessionAddIsIncremental) {
  // Adding a session to a converged network only transfers the new
  // speaker's view — existing sessions stay quiet.
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_router(3, 300);
  net.add_transit(1, 2);
  net.originate(2, pfx("2001:db8::/32"));

  const std::uint64_t before = net.total_messages();
  net.add_transit(1, 3);  // new leaf: should hear the one prefix, announce none
  EXPECT_EQ(net.total_messages() - before, 1u);
}

}  // namespace
}  // namespace tango::bgp
