#include <gtest/gtest.h>

#include "bgp/network.hpp"

namespace tango::bgp {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

const net::Prefix kP = pfx("2620:110:9011::/48");

TEST(BgpNetwork, RejectsDuplicateAndReservedIds) {
  BgpNetwork net;
  net.add_router(1, 100);
  EXPECT_THROW(net.add_router(1, 200), std::invalid_argument);
  EXPECT_THROW(net.add_router(kLocalRouter, 300), std::invalid_argument);
  EXPECT_THROW((void)net.router(99), std::out_of_range);
}

TEST(BgpNetwork, TransitChainPropagates) {
  // 3 (origin) -customer-of-> 2 -customer-of-> 1
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_router(3, 300);
  net.add_transit(1, 2);
  net.add_transit(2, 3);

  net.originate(3, kP);

  const Route* at2 = net.best_route(2, kP);
  ASSERT_NE(at2, nullptr);
  EXPECT_EQ(at2->as_path, (AsPath{300}));
  EXPECT_EQ(at2->local_pref, default_local_pref(Relationship::customer));

  const Route* at1 = net.best_route(1, kP);
  ASSERT_NE(at1, nullptr);
  EXPECT_EQ(at1->as_path, (AsPath{200, 300}));

  EXPECT_EQ(net.forwarding_path(1, kP), (std::vector<RouterId>{1, 2, 3}));
  EXPECT_EQ(net.forwarding_as_path(1, kP), (std::vector<Asn>{100, 200, 300}));
}

TEST(BgpNetwork, ValleyFreeBlocksPeerToPeerTransit) {
  // origin -customer-> A -peer- B -peer- C: C must not hear the route via B.
  BgpNetwork net;
  net.add_router(1, 100);  // A
  net.add_router(2, 200);  // B
  net.add_router(3, 300);  // C
  net.add_router(4, 400);  // origin, customer of A
  net.add_transit(1, 4);
  net.add_peering(1, 2);
  net.add_peering(2, 3);

  net.originate(4, kP);
  EXPECT_NE(net.best_route(2, kP), nullptr);  // A exports customer route to peer B
  EXPECT_EQ(net.best_route(3, kP), nullptr);  // B must not re-export to peer C
}

TEST(BgpNetwork, PrefersCustomerOverPeerOverProvider) {
  // Target 5 reachable by router 1 via: customer 2, peer 3, provider 4.
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_router(3, 300);
  net.add_router(4, 400);
  net.add_router(5, 500);
  net.add_transit(1, 2);   // 2 is 1's customer
  net.add_peering(1, 3);
  net.add_transit(4, 1);   // 4 is 1's provider
  net.add_transit(2, 5);   // 5 is customer of 2...
  net.add_transit(3, 5);   // ...and of 3...
  net.add_transit(4, 5);   // ...and of 4

  net.originate(5, kP);
  const Route* best = net.best_route(1, kP);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, 2u) << "customer route must win";

  // Remove the customer path: the peer route takes over.
  net.remove_session(2, 5);
  best = net.best_route(1, kP);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, 3u) << "peer route next";

  // Remove the peer path: provider route is the last resort.
  net.remove_session(3, 5);
  best = net.best_route(1, kP);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, 4u);

  // Remove everything: unreachable.
  net.remove_session(4, 5);
  EXPECT_EQ(net.best_route(1, kP), nullptr);
}

TEST(BgpNetwork, WithdrawPropagates) {
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_transit(1, 2);
  net.originate(2, kP);
  ASSERT_NE(net.best_route(1, kP), nullptr);
  net.withdraw(2, kP);
  EXPECT_EQ(net.best_route(1, kP), nullptr);
}

TEST(BgpNetwork, ReoriginationReplacesAttributes) {
  // 3 originates; its provider 2 acts on the communities when exporting to
  // ITS provider 1 (the Vultr pattern: actions are instructions to your
  // provider, consumed there).
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_router(3, 300);
  net.add_transit(1, 2);
  net.add_transit(2, 3);
  net.originate(3, kP);
  ASSERT_TRUE(net.best_route(1, kP));

  // Re-originate with a community telling AS200 not to export to AS100.
  net.originate(3, kP, CommunitySet{action::do_not_announce_to(100)});
  EXPECT_NE(net.best_route(2, kP), nullptr) << "the provider itself still hears it";
  EXPECT_EQ(net.best_route(1, kP), nullptr) << "suppression must withdraw the old export";

  // And flip back.
  net.originate(3, kP, CommunitySet{});
  EXPECT_NE(net.best_route(1, kP), nullptr);
}

TEST(BgpNetwork, ProviderStripsConsumedActionCommunities) {
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_router(3, 300);
  net.add_transit(1, 2);
  net.add_transit(2, 3);
  net.originate(3, kP, CommunitySet{action::do_not_announce_to(999), Community{300, 42}});

  // The originator's provider sees both communities...
  const Route* at2 = net.best_route(2, kP);
  ASSERT_NE(at2, nullptr);
  EXPECT_TRUE(at2->communities.contains(action::do_not_announce_to(999)));
  EXPECT_TRUE(at2->communities.contains(Community{300, 42}));

  // ...but propagates only the informational one upstream.
  const Route* at1 = net.best_route(1, kP);
  ASSERT_NE(at1, nullptr);
  EXPECT_FALSE(at1->communities.contains(action::do_not_announce_to(999)));
  EXPECT_TRUE(at1->communities.contains(Community{300, 42}));
}

TEST(BgpNetwork, LoopRejectionWithoutAllowasIn) {
  // Two routers of the same AS chained through a transit: the second router
  // must reject the first's announcement (path contains its own ASN).
  BgpNetwork net;
  net.add_router(1, 2914);
  net.add_router(10, 20473);
  net.add_router(11, 20473);
  net.add_transit(1, 10);
  net.add_transit(1, 11);
  net.originate(10, kP);
  EXPECT_EQ(net.best_route(11, kP), nullptr);
}

TEST(BgpNetwork, AllowasInAcceptsOwnAsn) {
  BgpNetwork net;
  net.add_router(1, 2914);
  SpeakerOptions allow{.allow_own_asn_in = true};
  net.add_router(10, 20473, allow);
  net.add_router(11, 20473, allow);
  net.add_transit(1, 10);
  net.add_transit(1, 11);
  net.originate(10, kP);
  const Route* best = net.best_route(11, kP);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->as_path, (AsPath{2914, 20473}));
}

TEST(BgpNetwork, AsPathPoisoningRepelsTarget) {
  // 3 originates poisoned against AS200: router 2 (AS200) must reject it,
  // so router 1 only hears the route via the unpoisoned neighbor 4.
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_router(3, 300);
  net.add_router(4, 400);
  net.add_transit(2, 3);  // 3 customer of 2
  net.add_transit(4, 3);  // and of 4
  net.add_transit(1, 2);  // 2 customer of 1? No: 2 is 1's customer
  net.add_transit(1, 4);

  net.router(3).originate(kP, {}, Origin::igp, /*poisoned=*/{200});
  net.run_to_convergence();

  EXPECT_EQ(net.best_route(2, kP), nullptr) << "poisoned AS must reject";
  const Route* at1 = net.best_route(1, kP);
  ASSERT_NE(at1, nullptr);
  EXPECT_EQ(at1->learned_from, 4u);
  EXPECT_TRUE(at1->as_path.contains(200)) << "poison stays visible on the path";
}

TEST(BgpNetwork, SessionFlapRestoresState) {
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_router(3, 300);
  net.add_transit(1, 3);
  net.add_transit(2, 3);
  net.add_peering(1, 2);
  net.originate(3, kP);

  const Route* before = net.best_route(1, kP);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->learned_from, 3u);

  net.remove_session(1, 3);
  const Route* during = net.best_route(1, kP);
  ASSERT_NE(during, nullptr);
  EXPECT_EQ(during->learned_from, 2u) << "falls back to the peer path";

  net.add_transit(1, 3);
  const Route* after = net.best_route(1, kP);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->learned_from, 3u) << "customer route returns after the flap";
}

TEST(BgpNetwork, SessionPreferenceBreaksEqualLengthTies) {
  // Router 1 buys transit from 2 and 3; the weight-style preference makes it
  // prefer 3 between two equal-length candidates.
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.add_router(3, 300);
  net.add_router(4, 400);
  net.add_transit(2, 1, /*customer_preference=*/110);
  net.add_transit(3, 1, /*customer_preference=*/120);
  net.add_transit(2, 4);
  net.add_transit(3, 4);
  net.originate(4, kP);

  const Route* best = net.best_route(1, kP);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, 3u);
}

TEST(BgpNetwork, MessageLimitGuards) {
  BgpNetwork net;
  net.add_router(1, 100);
  net.add_router(2, 200);
  net.set_message_limit(0);
  net.router(2).originate(kP);
  net.router(1).add_session(2, 200, SessionConfig{.rel = Relationship::customer});
  net.router(2).add_session(1, 100, SessionConfig{.rel = Relationship::provider});
  EXPECT_THROW(net.run_to_convergence(), ConvergenceError);
}

TEST(BgpSpeaker, UpdateFromUnknownSessionIgnored) {
  BgpSpeaker sp{1, 100};
  Update u = Update::announce(Route{.prefix = kP, .as_path = AsPath{200}});
  u.from = 99;
  sp.receive(u);  // must not crash or store anything
  EXPECT_EQ(sp.loc_rib().size(), 0u);
  EXPECT_EQ(sp.updates_processed(), 1u);
}

TEST(BgpSpeaker, SessionWithSelfThrows) {
  BgpSpeaker sp{1, 100};
  EXPECT_THROW(sp.add_session(1, 100, SessionConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace tango::bgp
