#include "bgp/policy.hpp"

#include <gtest/gtest.h>

namespace tango::bgp {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

Route learned_route(Relationship, CommunitySet communities = {}) {
  return Route{.prefix = pfx("2620:110:9011::/48"),
               .as_path = AsPath{20473},
               .origin = Origin::igp,
               .communities = std::move(communities),
               .med = 0,
               .local_pref = 100,
               .learned_from = 3,
               .learned_from_asn = 20473};
}

ExportContext ctx(Asn exporter, Asn to, Relationship to_rel, Relationship learned_rel) {
  return ExportContext{.exporter = exporter,
                       .to_neighbor = to,
                       .to_rel = to_rel,
                       .learned_rel = learned_rel,
                       .honors_action_communities = true,
                       .strips_private_asns = false};
}

TEST(Relationship, ReverseIsInvolution) {
  for (Relationship r : {Relationship::customer, Relationship::peer, Relationship::provider}) {
    EXPECT_EQ(reverse(reverse(r)), r);
  }
  EXPECT_EQ(reverse(Relationship::customer), Relationship::provider);
  EXPECT_EQ(reverse(Relationship::peer), Relationship::peer);
}

TEST(Relationship, LocalPrefBands) {
  EXPECT_GT(default_local_pref(Relationship::customer), default_local_pref(Relationship::peer));
  EXPECT_GT(default_local_pref(Relationship::peer), default_local_pref(Relationship::provider));
}

/// Gao-Rexford matrix: rows = how learned, columns = export target.
TEST(ExportPolicy, ValleyFreeMatrix) {
  const Route r = learned_route(Relationship::customer);
  struct Case {
    Relationship learned;
    Relationship to;
    bool exported;
  };
  const Case cases[] = {
      {Relationship::customer, Relationship::customer, true},
      {Relationship::customer, Relationship::peer, true},
      {Relationship::customer, Relationship::provider, true},
      {Relationship::peer, Relationship::customer, true},
      {Relationship::peer, Relationship::peer, false},
      {Relationship::peer, Relationship::provider, false},
      {Relationship::provider, Relationship::customer, true},
      {Relationship::provider, Relationship::peer, false},
      {Relationship::provider, Relationship::provider, false},
  };
  for (const Case& c : cases) {
    auto out = ExportPolicy::apply(r, ctx(2914, 174, c.to, c.learned));
    EXPECT_EQ(out.has_value(), c.exported)
        << "learned=" << to_string(c.learned) << " to=" << to_string(c.to);
  }
}

TEST(ExportPolicy, PrependsExporterAsn) {
  const Route r = learned_route(Relationship::customer);
  auto out = ExportPolicy::apply(r, ctx(2914, 174, Relationship::peer, Relationship::customer));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->as_path, (AsPath{2914, 20473}));
  // Non-transitive attributes reset.
  EXPECT_EQ(out->local_pref, 100u);
  EXPECT_EQ(out->med, 0u);
  EXPECT_TRUE(out->locally_originated());  // receiver fills learned_from
}

TEST(ExportPolicy, HonorsDoNotAnnounce) {
  const Route r = learned_route(Relationship::customer,
                                CommunitySet{action::do_not_announce_to(174)});
  EXPECT_FALSE(ExportPolicy::apply(r, ctx(2914, 174, Relationship::peer,
                                          Relationship::customer))
                   .has_value());
  // Other neighbors unaffected.
  EXPECT_TRUE(ExportPolicy::apply(r, ctx(2914, 1299, Relationship::peer,
                                         Relationship::customer))
                  .has_value());
}

TEST(ExportPolicy, IgnoresActionsWhenNotHonoring) {
  const Route r = learned_route(Relationship::customer,
                                CommunitySet{action::do_not_announce_to(174)});
  auto c = ctx(2914, 174, Relationship::peer, Relationship::customer);
  c.honors_action_communities = false;
  EXPECT_TRUE(ExportPolicy::apply(r, c).has_value());
}

TEST(ExportPolicy, NoTransitExportsOnlyToCustomers) {
  const Route r = learned_route(Relationship::customer, CommunitySet{action::no_transit()});
  EXPECT_TRUE(ExportPolicy::apply(r, ctx(2914, 64512, Relationship::customer,
                                         Relationship::customer))
                  .has_value());
  EXPECT_FALSE(ExportPolicy::apply(r, ctx(2914, 1299, Relationship::peer,
                                          Relationship::customer))
                   .has_value());
  EXPECT_FALSE(ExportPolicy::apply(r, ctx(2914, 3356, Relationship::provider,
                                          Relationship::customer))
                   .has_value());
}

TEST(ExportPolicy, AnnounceOnlyWhitelists) {
  const Route r = learned_route(Relationship::customer,
                                CommunitySet{action::announce_only_to(1299)});
  EXPECT_TRUE(ExportPolicy::apply(r, ctx(20473, 1299, Relationship::provider,
                                         Relationship::customer))
                  .has_value());
  EXPECT_FALSE(ExportPolicy::apply(r, ctx(20473, 2914, Relationship::provider,
                                          Relationship::customer))
                   .has_value());
}

TEST(ExportPolicy, PrependCommunitiesAddPadding) {
  const Route r =
      learned_route(Relationship::customer, CommunitySet{action::prepend_to(174, 2)});
  auto out = ExportPolicy::apply(r, ctx(2914, 174, Relationship::peer, Relationship::customer));
  ASSERT_TRUE(out.has_value());
  // 1 standard prepend + 2 requested.
  EXPECT_EQ(out->as_path, (AsPath{2914, 2914, 2914, 20473}));
}

TEST(ExportPolicy, StripsPrivateAsns) {
  Route r = learned_route(Relationship::customer);
  r.as_path = AsPath{64512};  // customer announced with a private ASN
  auto c = ctx(20473, 2914, Relationship::provider, Relationship::customer);
  c.strips_private_asns = true;
  auto out = ExportPolicy::apply(r, c);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->as_path, (AsPath{20473}));  // private ASN gone, Vultr visible
}

TEST(ExportPolicy, WellKnownNoExport) {
  const Route r = learned_route(Relationship::customer, CommunitySet{kNoExport});
  EXPECT_TRUE(ExportPolicy::apply(r, ctx(2914, 64512, Relationship::customer,
                                         Relationship::customer))
                  .has_value());
  EXPECT_FALSE(ExportPolicy::apply(r, ctx(2914, 1299, Relationship::peer,
                                          Relationship::customer))
                   .has_value());
}

TEST(ExportPolicy, WellKnownNoAdvertise) {
  const Route r = learned_route(Relationship::customer, CommunitySet{kNoAdvertise});
  EXPECT_FALSE(ExportPolicy::apply(r, ctx(2914, 64512, Relationship::customer,
                                          Relationship::customer))
                   .has_value());
}

TEST(ImportPolicy, RejectsLoops) {
  Route r = learned_route(Relationship::customer);
  r.as_path = AsPath{2914, 20473};
  EXPECT_FALSE(ExportPolicy::import_accepts(2914, r));   // own ASN on path
  EXPECT_TRUE(ExportPolicy::import_accepts(1299, r));
}

}  // namespace
}  // namespace tango::bgp
