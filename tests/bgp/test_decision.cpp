#include <gtest/gtest.h>

#include "bgp/rib.hpp"

namespace tango::bgp {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

Route make_route(std::uint32_t local_pref, std::initializer_list<Asn> path,
                 RouterId learned_from = 1, Asn learned_asn = 100,
                 Origin origin = Origin::igp, std::uint32_t med = 0) {
  return Route{.prefix = pfx("2001:db8::/32"),
               .as_path = AsPath{path},
               .origin = origin,
               .communities = {},
               .med = med,
               .local_pref = local_pref,
               .learned_from = learned_from,
               .learned_from_asn = learned_asn};
}

TEST(Decision, HighestLocalPrefWins) {
  Route a = make_route(300, {1, 2, 3});
  Route b = make_route(100, {1});
  EXPECT_TRUE(Decision::better(a, b));
  EXPECT_FALSE(Decision::better(b, a));
  EXPECT_EQ(Decision::deciding_step(a, b), DecisionStep::local_pref);
}

TEST(Decision, ShorterAsPathWinsAtEqualPref) {
  Route a = make_route(100, {1, 2});
  Route b = make_route(100, {1, 2, 3});
  EXPECT_TRUE(Decision::better(a, b));
  EXPECT_EQ(Decision::deciding_step(a, b), DecisionStep::as_path_length);
}

TEST(Decision, LowerOriginWins) {
  Route a = make_route(100, {1, 2});
  Route b = make_route(100, {1, 3});
  a.origin = Origin::igp;
  b.origin = Origin::incomplete;
  EXPECT_TRUE(Decision::better(a, b));
  EXPECT_EQ(Decision::deciding_step(a, b), DecisionStep::origin);
}

TEST(Decision, LowerMedWins) {
  Route a = make_route(100, {1, 2}, 1, 100, Origin::igp, 10);
  Route b = make_route(100, {1, 3}, 2, 100, Origin::igp, 20);
  EXPECT_TRUE(Decision::better(a, b));
  EXPECT_EQ(Decision::deciding_step(a, b), DecisionStep::med);
}

TEST(Decision, SessionPreferenceBeatsNeighborTiebreaksOnly) {
  Route a = make_route(100, {1, 2}, 5, 2914);
  Route b = make_route(100, {1, 3}, 4, 174);
  a.session_preference = 120;  // operator prefers this transit
  b.session_preference = 105;
  EXPECT_TRUE(Decision::better(a, b));
  EXPECT_EQ(Decision::deciding_step(a, b), DecisionStep::session_preference);
  // ...but never overrides AS-path length.
  Route shorter = make_route(100, {1}, 6, 9999);
  EXPECT_TRUE(Decision::better(shorter, a));
}

TEST(Decision, NeighborAsnTiebreak) {
  Route a = make_route(100, {1, 2}, 5, 174);
  Route b = make_route(100, {1, 3}, 4, 2914);
  EXPECT_TRUE(Decision::better(a, b));  // 174 < 2914 despite higher router id
  EXPECT_EQ(Decision::deciding_step(a, b), DecisionStep::neighbor_asn);
}

TEST(Decision, NeighborRouterFinalTiebreak) {
  Route a = make_route(100, {1, 2}, 4, 100);
  Route b = make_route(100, {1, 3}, 5, 100);
  EXPECT_TRUE(Decision::better(a, b));
  EXPECT_EQ(Decision::deciding_step(a, b), DecisionStep::neighbor_router);
}

TEST(Decision, EqualRoutesAreNotBetter) {
  Route a = make_route(100, {1, 2});
  EXPECT_FALSE(Decision::better(a, a));
  EXPECT_EQ(Decision::deciding_step(a, a), DecisionStep::equal);
}

TEST(Decision, SelectEmptyIsNullopt) {
  EXPECT_FALSE(Decision::select({}).has_value());
}

TEST(Decision, SelectFindsUniqueBest) {
  std::vector<Route> candidates{
      make_route(100, {1, 2, 3}, 1, 300),
      make_route(200, {1, 2, 3, 4}, 2, 200),  // best: pref dominates length
      make_route(100, {1}, 3, 100),
  };
  auto best = Decision::select(candidates);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->learned_from, 2u);
}

/// Property: `better` is a strict total order on any set of distinct routes
/// (antisymmetric, and select() is invariant under permutation).
TEST(Decision, SelectIsPermutationInvariant) {
  std::vector<Route> candidates{
      make_route(100, {1, 2}, 1, 2914), make_route(100, {1, 3}, 2, 1299),
      make_route(100, {1, 4}, 3, 3257), make_route(200, {1, 5, 6}, 4, 174),
      make_route(100, {9}, 5, 3356),
  };
  auto reference = Decision::select(candidates);
  ASSERT_TRUE(reference.has_value());
  std::sort(candidates.begin(), candidates.end(),
            [](const Route& a, const Route& b) { return a.learned_from > b.learned_from; });
  EXPECT_EQ(Decision::select(candidates), reference);

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (i == j) continue;
      // Antisymmetry.
      EXPECT_FALSE(Decision::better(candidates[i], candidates[j]) &&
                   Decision::better(candidates[j], candidates[i]));
    }
  }
}

TEST(AdjRibIn, PutReplacesPerNeighbor) {
  AdjRibIn rib;
  rib.put(make_route(100, {1, 2}, 7, 100));
  rib.put(make_route(100, {1, 9}, 7, 100));  // same neighbor: replace
  rib.put(make_route(100, {2, 2}, 8, 100));
  EXPECT_EQ(rib.candidates(pfx("2001:db8::/32")).size(), 2u);
  EXPECT_EQ(rib.size(), 2u);
  const Route* r = rib.find(pfx("2001:db8::/32"), 7);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->as_path, (AsPath{1, 9}));
}

TEST(AdjRibIn, EraseAndEraseNeighbor) {
  AdjRibIn rib;
  rib.put(make_route(100, {1}, 7, 100));
  rib.put(make_route(100, {2}, 8, 100));
  EXPECT_TRUE(rib.erase(pfx("2001:db8::/32"), 7));
  EXPECT_FALSE(rib.erase(pfx("2001:db8::/32"), 7));
  auto affected = rib.erase_neighbor(8);
  EXPECT_EQ(affected.size(), 1u);
  EXPECT_TRUE(rib.prefixes().empty());
}

TEST(LocRib, SetReportsChange) {
  LocRib rib;
  Route r = make_route(100, {1, 2});
  EXPECT_TRUE(rib.set(r));
  EXPECT_FALSE(rib.set(r));  // unchanged
  r.local_pref = 200;
  EXPECT_TRUE(rib.set(r));
  EXPECT_TRUE(rib.erase(r.prefix));
  EXPECT_FALSE(rib.erase(r.prefix));
}

}  // namespace
}  // namespace tango::bgp
