#include "bgp/community.hpp"

#include <gtest/gtest.h>

namespace tango::bgp {
namespace {

TEST(Community, ParseAndFormat) {
  auto c = Community::parse("64600:2914");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->asn, 64600);
  EXPECT_EQ(c->value, 2914);
  EXPECT_EQ(c->to_string(), "64600:2914");
  EXPECT_EQ(c->raw(), (64600u << 16) | 2914u);
}

TEST(Community, ParseRejectsJunk) {
  EXPECT_FALSE(Community::parse("").has_value());
  EXPECT_FALSE(Community::parse("64600").has_value());
  EXPECT_FALSE(Community::parse("64600:").has_value());
  EXPECT_FALSE(Community::parse(":2914").has_value());
  EXPECT_FALSE(Community::parse("70000:1").has_value());  // > 16 bit
  EXPECT_FALSE(Community::parse("64600:70000").has_value());
  EXPECT_FALSE(Community::parse("a:b").has_value());
}

TEST(CommunitySet, ParseListRoundTrip) {
  auto set = CommunitySet::parse("64600:2914 64600:1299");
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->size(), 2u);
  EXPECT_TRUE(set->contains(action::do_not_announce_to(2914)));
  EXPECT_TRUE(set->contains(action::do_not_announce_to(1299)));
  auto again = CommunitySet::parse(set->to_string());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *set);
  // Empty string = empty set.
  EXPECT_TRUE(CommunitySet::parse("")->empty());
  EXPECT_FALSE(CommunitySet::parse("64600:1 junk").has_value());
}

TEST(CommunitySet, AddIsIdempotent) {
  CommunitySet set;
  set.add(action::do_not_announce_to(2914));
  set.add(action::do_not_announce_to(2914));
  EXPECT_EQ(set.size(), 1u);
  set.remove(action::do_not_announce_to(2914));
  EXPECT_TRUE(set.empty());
}

TEST(CommunitySet, ForbidsExportSemantics) {
  CommunitySet set{action::do_not_announce_to(2914)};
  EXPECT_TRUE(set.forbids_export_to(2914));
  EXPECT_FALSE(set.forbids_export_to(1299));
}

TEST(CommunitySet, AnnounceOnlySemantics) {
  CommunitySet set{action::announce_only_to(3257)};
  EXPECT_TRUE(set.has_announce_only());
  EXPECT_FALSE(set.forbids_export_to(3257));
  EXPECT_TRUE(set.forbids_export_to(2914));   // everyone else suppressed
  EXPECT_TRUE(set.forbids_export_to(1299));

  // Multiple announce-only targets whitelist each of them.
  set.add(action::announce_only_to(174));
  EXPECT_FALSE(set.forbids_export_to(174));
  EXPECT_FALSE(set.forbids_export_to(3257));
}

TEST(CommunitySet, PrependAccumulates) {
  CommunitySet set{action::prepend_to(2914, 1), action::prepend_to(2914, 3)};
  EXPECT_EQ(set.prepends_for(2914), 4);
  EXPECT_EQ(set.prepends_for(1299), 0);
}

TEST(CommunitySet, WithoutActionsKeepsInformational) {
  CommunitySet set{action::do_not_announce_to(2914), Community{20473, 100},
                   action::no_transit()};
  auto cleaned = set.without_actions();
  EXPECT_EQ(cleaned.size(), 1u);
  EXPECT_TRUE(cleaned.contains(Community{20473, 100}));
}

TEST(CommunitySet, OrderingIndependentEquality) {
  CommunitySet a;
  a.add(Community{1, 2});
  a.add(Community{3, 4});
  CommunitySet b;
  b.add(Community{3, 4});
  b.add(Community{1, 2});
  EXPECT_EQ(a, b);
}

TEST(WellKnown, Values) {
  EXPECT_EQ(kNoExport.raw(), 0xFFFFFF01u);
  EXPECT_EQ(kNoAdvertise.raw(), 0xFFFFFF02u);
}

}  // namespace
}  // namespace tango::bgp
