// RFC 4271 / RFC 4760 wire format: golden vectors, round-trip properties,
// malformed-input rejection, and the full control plane running over
// serialized bytes.
#include "bgp/wire.hpp"

#include <gtest/gtest.h>

#include <random>

#include "net/prefix_trie.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::bgp::wire {
namespace {

const net::IpAddress kV6NextHop{*net::Ipv6Address::parse("fe80::1")};
const net::IpAddress kV4NextHop{net::Ipv4Address{10, 0, 0, 1}};

Update sample_announce_v6() {
  Route route{.prefix = *net::Prefix::parse("2620:110:9011::/48"),
              .as_path = AsPath{20473, 2914, 20473},
              .origin = Origin::igp,
              .communities = CommunitySet{action::do_not_announce_to(2914)},
              .med = 50,
              .local_pref = 100};
  return Update::announce(std::move(route));
}

TEST(WireKeepalive, GoldenBytes) {
  const auto bytes = encode_keepalive();
  ASSERT_EQ(bytes.size(), kHeaderSize);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(bytes[static_cast<std::size_t>(i)], 0xFF);
  EXPECT_EQ(bytes[16], 0x00);
  EXPECT_EQ(bytes[17], 19);
  EXPECT_EQ(bytes[18], 4);  // type = KEEPALIVE
  const ParsedMessage parsed = parse_message(bytes);
  EXPECT_EQ(parsed.type, MessageType::keepalive);
}

TEST(WireOpen, RoundTripWith4ByteAsn) {
  OpenMessage open{.version = 4,
                   .asn = 20473,
                   .hold_time = 180,
                   .bgp_identifier = 0x0A000001,
                   .four_octet_asn = 20473,
                   .mp_ipv6 = true};
  const auto bytes = encode_open(open);
  const ParsedMessage parsed = parse_message(bytes);
  ASSERT_EQ(parsed.type, MessageType::open);
  ASSERT_TRUE(parsed.open.has_value());
  EXPECT_EQ(*parsed.open, open);
}

TEST(WireOpen, AsTransForLargeAsn) {
  OpenMessage open{.asn = 4200000001u, .four_octet_asn = 4200000001u};
  const auto bytes = encode_open(open);
  // The 2-octet field must carry AS_TRANS (23456).
  EXPECT_EQ((bytes[kHeaderSize + 1] << 8) | bytes[kHeaderSize + 2], 23456);
  const ParsedMessage parsed = parse_message(bytes);
  EXPECT_EQ(parsed.open->asn, 4200000001u) << "real ASN recovered from capability 65";
}

TEST(WireNotification, RoundTrip) {
  NotificationMessage n{.code = 6, .subcode = 2, .data = {0xDE, 0xAD}};
  const ParsedMessage parsed = parse_message(encode_notification(n));
  ASSERT_EQ(parsed.type, MessageType::notification);
  EXPECT_EQ(*parsed.notification, n);
}

TEST(WireUpdate, V6AnnounceRoundTrip) {
  const Update original = sample_announce_v6();
  const auto bytes = encode_update(original, kV6NextHop);
  const ParsedMessage parsed = parse_message(bytes);
  ASSERT_EQ(parsed.type, MessageType::update);
  ASSERT_TRUE(parsed.update.has_value());
  const Update& got = *parsed.update;
  EXPECT_EQ(got.kind, Update::Kind::announce);
  EXPECT_EQ(got.prefix, original.prefix);
  EXPECT_EQ(got.route->as_path, original.route->as_path);
  EXPECT_EQ(got.route->origin, original.route->origin);
  EXPECT_EQ(got.route->communities, original.route->communities);
  EXPECT_EQ(got.route->med, original.route->med);
  EXPECT_EQ(got.route->local_pref, original.route->local_pref);
  EXPECT_EQ(parsed.next_hop, kV6NextHop);
}

TEST(WireUpdate, V6WithdrawRoundTrip) {
  const Update original = Update::withdraw(*net::Prefix::parse("2620:110:9013::/48"));
  const ParsedMessage parsed = parse_message(encode_update(original, kV6NextHop));
  ASSERT_TRUE(parsed.update.has_value());
  EXPECT_EQ(parsed.update->kind, Update::Kind::withdraw);
  EXPECT_EQ(parsed.update->prefix, original.prefix);
}

TEST(WireUpdate, V4AnnounceAndWithdrawRoundTrip) {
  Route route{.prefix = *net::Prefix::parse("203.0.113.0/24"),
              .as_path = AsPath{64512},
              .origin = Origin::egp,
              .med = 7,
              .local_pref = 200};
  const Update announce = Update::announce(route);
  const ParsedMessage got_a = parse_message(encode_update(announce, kV4NextHop));
  ASSERT_TRUE(got_a.update.has_value());
  EXPECT_EQ(got_a.update->kind, Update::Kind::announce);
  EXPECT_EQ(got_a.update->prefix, announce.prefix);
  EXPECT_EQ(got_a.update->route->origin, Origin::egp);
  EXPECT_EQ(got_a.next_hop, kV4NextHop);

  const Update withdraw = Update::withdraw(*net::Prefix::parse("203.0.113.0/24"));
  const ParsedMessage got_w = parse_message(encode_update(withdraw, kV4NextHop));
  EXPECT_EQ(got_w.update->kind, Update::Kind::withdraw);
  EXPECT_EQ(got_w.update->prefix, withdraw.prefix);
}

TEST(WireUpdate, NextHopFamilyValidated) {
  EXPECT_THROW(encode_update(sample_announce_v6(), kV4NextHop), WireError);
  Route v4{.prefix = *net::Prefix::parse("203.0.113.0/24"), .as_path = AsPath{1}};
  EXPECT_THROW(encode_update(Update::announce(v4), kV6NextHop), WireError);
}

TEST(WireParse, RejectsMalformed) {
  const auto good = encode_update(sample_announce_v6(), kV6NextHop);

  // Truncated everywhere: every cut must throw, never crash or mis-parse.
  for (std::size_t keep = 0; keep < good.size(); ++keep) {
    std::span<const std::uint8_t> cut{good.data(), keep};
    EXPECT_THROW((void)parse_message(cut), WireError) << "cut at " << keep;
  }

  // Bad marker.
  auto bad_marker = good;
  bad_marker[3] = 0x00;
  EXPECT_THROW((void)parse_message(bad_marker), WireError);

  // Length field disagreeing with the buffer.
  auto bad_len = good;
  bad_len[17] ^= 0x01;
  EXPECT_THROW((void)parse_message(bad_len), WireError);

  // Unknown message type.
  auto bad_type = good;
  bad_type[18] = 9;
  EXPECT_THROW((void)parse_message(bad_type), WireError);

  // Keepalive with a body.
  auto ka = encode_keepalive();
  ka.push_back(0);
  ka[17] = static_cast<std::uint8_t>(ka.size());
  EXPECT_THROW((void)parse_message(ka), WireError);
}

/// Hand-crafts an UPDATE from raw withdrawn/attribute/NLRI bytes, with a
/// correct marker and length, for malformed-input tests the encoder cannot
/// produce.
std::vector<std::uint8_t> craft_update(std::vector<std::uint8_t> attrs,
                                       std::vector<std::uint8_t> nlri = {},
                                       std::vector<std::uint8_t> withdrawn = {}) {
  std::vector<std::uint8_t> m(16, 0xFF);
  m.push_back(0);
  m.push_back(0);  // length, patched below
  m.push_back(2);  // UPDATE
  m.push_back(static_cast<std::uint8_t>(withdrawn.size() >> 8));
  m.push_back(static_cast<std::uint8_t>(withdrawn.size()));
  m.insert(m.end(), withdrawn.begin(), withdrawn.end());
  m.push_back(static_cast<std::uint8_t>(attrs.size() >> 8));
  m.push_back(static_cast<std::uint8_t>(attrs.size()));
  m.insert(m.end(), attrs.begin(), attrs.end());
  m.insert(m.end(), nlri.begin(), nlri.end());
  m[16] = static_cast<std::uint8_t>(m.size() >> 8);
  m[17] = static_cast<std::uint8_t>(m.size());
  return m;
}

/// One path attribute in non-extended form.
std::vector<std::uint8_t> attr(std::uint8_t flags, AttrType type,
                               std::vector<std::uint8_t> value) {
  std::vector<std::uint8_t> out{flags, static_cast<std::uint8_t>(type),
                                static_cast<std::uint8_t>(value.size())};
  out.insert(out.end(), value.begin(), value.end());
  return out;
}

const std::vector<std::uint8_t> kNlri24{24, 203, 0, 113};  // 203.0.113.0/24

// Regression: every decode failure must surface as WireError.  A
// NOTIFICATION whose body cannot even hold the code/subcode pair used to
// escape as the ByteReader's own std::out_of_range.
TEST(WireParse, TruncatedNotificationBodyIsWireError) {
  std::vector<std::uint8_t> m(16, 0xFF);
  m.push_back(0);
  m.push_back(0);
  m.push_back(3);  // NOTIFICATION, zero-length body
  m[17] = static_cast<std::uint8_t>(m.size());
  EXPECT_THROW((void)parse_message(m), WireError);

  m.push_back(6);  // code only, still no subcode
  m[17] = static_cast<std::uint8_t>(m.size());
  EXPECT_THROW((void)parse_message(m), WireError);
}

// Regression: a truncated OPEN (optional-parameters length pointing past
// the end) likewise used to throw std::out_of_range.
TEST(WireParse, TruncatedOpenIsWireError) {
  const auto good = encode_open(OpenMessage{.asn = 64512, .mp_ipv6 = true});
  for (std::size_t keep = kHeaderSize; keep < good.size(); ++keep) {
    std::vector<std::uint8_t> cut{good.begin(), good.begin() + static_cast<long>(keep)};
    cut[16] = static_cast<std::uint8_t>(cut.size() >> 8);
    cut[17] = static_cast<std::uint8_t>(cut.size());
    EXPECT_THROW((void)parse_message(cut), WireError) << "cut at " << keep;
  }
}

// Regression: attribute values shorter than their declared length (or
// declared lengths pointing past the attribute block) must be WireError,
// not an out-of-range escape.
TEST(WireParse, AttributeLengthPastBufferIsWireError) {
  // AS_PATH claiming 200 bytes inside a tiny attribute block.
  EXPECT_THROW((void)parse_message(craft_update(attr(0x40, AttrType::as_path, {2, 1}), kNlri24)),
               WireError);
  auto oversized = attr(0x40, AttrType::as_path, {});
  oversized[2] = 200;  // length byte promises more than the block holds
  EXPECT_THROW((void)parse_message(craft_update(oversized, kNlri24)), WireError);
}

TEST(WireParse, ZeroCountAsPathSegmentRejected) {
  EXPECT_THROW(
      (void)parse_message(craft_update(attr(0x40, AttrType::as_path, {2, 0}), kNlri24)),
      WireError);
}

TEST(WireParse, ZeroLengthCommunitiesRejected) {
  EXPECT_THROW(
      (void)parse_message(craft_update(attr(0xC0, AttrType::communities, {}), kNlri24)),
      WireError);
}

TEST(WireParse, FixedLengthAttributesRejectWrongSizes) {
  EXPECT_THROW(
      (void)parse_message(craft_update(attr(0x40, AttrType::origin, {0, 0}), kNlri24)),
      WireError)
      << "ORIGIN must be exactly 1 byte";
  EXPECT_THROW(
      (void)parse_message(craft_update(attr(0x80, AttrType::med, {0, 0, 1}), kNlri24)),
      WireError)
      << "MED must be exactly 4 bytes";
  EXPECT_THROW(
      (void)parse_message(
          craft_update(attr(0x40, AttrType::local_pref, {0, 0, 0, 0, 1}), kNlri24)),
      WireError)
      << "LOCAL_PREF must be exactly 4 bytes";
}

TEST(WireParse, MpReachWithoutNlriRejected) {
  // AFI/SAFI, 16-byte next hop, reserved — and then nothing announced.
  std::vector<std::uint8_t> mp{0, 2, 1, 16};
  mp.insert(mp.end(), 16, 0x20);
  mp.push_back(0);  // reserved
  EXPECT_THROW((void)parse_message(craft_update(attr(0x80, AttrType::mp_reach_nlri, mp))),
               WireError);
}

TEST(WireParse, MpReachConsumesEveryNlri) {
  // Two prefixes in one MP_REACH_NLRI: both must decode (the last one wins
  // in this single-prefix implementation); a trailing half-prefix must
  // reject the whole attribute.
  std::vector<std::uint8_t> mp{0, 2, 1, 16};
  mp.insert(mp.end(), 16, 0x20);
  mp.push_back(0);                               // reserved
  mp.insert(mp.end(), {32, 0x20, 0x01, 0x0d, 0xb8});  // 2001:db8::/32
  mp.insert(mp.end(), {48, 0x26, 0x20, 0x01, 0x10, 0x90, 0x11});  // 2620:110:9011::/48
  const ParsedMessage parsed = parse_message(craft_update(attr(0x80, AttrType::mp_reach_nlri, mp)));
  ASSERT_TRUE(parsed.update.has_value());
  EXPECT_EQ(parsed.update->prefix, *net::Prefix::parse("2620:110:9011::/48"));

  auto truncated = mp;
  truncated.push_back(48);  // a third prefix with no address bytes at all
  truncated.push_back(0x26);
  EXPECT_THROW(
      (void)parse_message(craft_update(attr(0x80, AttrType::mp_reach_nlri, truncated))),
      WireError);
}

// Boundary prefixes: /0 (default route) and the full-length host prefix
// must survive the wire and behave in the trie.
TEST(WireBoundary, DefaultAndHostPrefixesRoundTrip) {
  for (const char* text : {"0.0.0.0/0", "203.0.113.7/32"}) {
    Route route{.prefix = *net::Prefix::parse(text), .as_path = AsPath{64512}};
    const Update rebuilt = roundtrip_update(Update::announce(route), kV4NextHop);
    EXPECT_EQ(rebuilt.prefix, route.prefix) << text;
    const Update withdrawn = roundtrip_update(Update::withdraw(route.prefix), kV4NextHop);
    EXPECT_EQ(withdrawn.prefix, route.prefix) << text;
  }
  for (const char* text : {"::/0", "2620:110:9011::1/128"}) {
    Route route{.prefix = *net::Prefix::parse(text), .as_path = AsPath{64512}};
    const Update rebuilt = roundtrip_update(Update::announce(route), kV6NextHop);
    EXPECT_EQ(rebuilt.prefix, route.prefix) << text;
  }
}

TEST(WireBoundary, BoundaryPrefixesResolveThroughTrie) {
  net::PrefixTrie<int> trie;
  const auto def = *net::Prefix::parse("0.0.0.0/0");
  const auto host = *net::Prefix::parse("203.0.113.7/32");
  // Install exactly what came off the wire.
  trie.insert(net::trie_key(roundtrip_update(
                  Update::announce(Route{.prefix = def, .as_path = AsPath{1}}), kV4NextHop)
                  .prefix),
              0);
  trie.insert(net::trie_key(roundtrip_update(
                  Update::announce(Route{.prefix = host, .as_path = AsPath{2}}), kV4NextHop)
                  .prefix),
              1);
  const int* exact = trie.lookup(net::trie_key(net::IpAddress{*net::Ipv4Address::parse("203.0.113.7")}));
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(*exact, 1) << "/32 wins longest-prefix match";
  const int* fallback = trie.lookup(net::trie_key(net::IpAddress{*net::Ipv4Address::parse("198.51.100.1")}));
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(*fallback, 0) << "/0 catches everything else";
}

/// Property: round-trip over randomized updates.
class WireRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WireRoundTrip, RandomizedUpdates) {
  std::mt19937_64 rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    Route route;
    net::Ipv6Address::Bytes b{};
    b[0] = 0x20;
    for (std::size_t j = 1; j < 8; ++j) b[j] = static_cast<std::uint8_t>(rng());
    route.prefix = net::Prefix{
        net::Ipv6Prefix{net::Ipv6Address{b}, static_cast<std::uint8_t>(rng() % 129)}};
    std::vector<Asn> asns;
    for (std::size_t j = 0; j < rng() % 8; ++j) {
      asns.push_back(static_cast<Asn>(rng() % 4200000000ull));
    }
    route.as_path = AsPath{std::move(asns)};
    route.origin = static_cast<Origin>(rng() % 3);
    route.med = static_cast<std::uint32_t>(rng());
    route.local_pref = static_cast<std::uint32_t>(rng());
    for (std::size_t j = 0; j < rng() % 5; ++j) {
      route.communities.add(Community{static_cast<std::uint16_t>(rng()),
                                      static_cast<std::uint16_t>(rng())});
    }

    const bool withdraw = rng() % 4 == 0;
    const Update original =
        withdraw ? Update::withdraw(route.prefix) : Update::announce(route);
    const Update rebuilt = roundtrip_update(original, kV6NextHop);
    EXPECT_EQ(rebuilt.kind, original.kind);
    EXPECT_EQ(rebuilt.prefix, original.prefix);
    if (!withdraw) {
      EXPECT_EQ(rebuilt.route->as_path, original.route->as_path);
      EXPECT_EQ(rebuilt.route->communities, original.route->communities);
      EXPECT_EQ(rebuilt.route->origin, original.route->origin);
      EXPECT_EQ(rebuilt.route->med, original.route->med);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Values(1u, 17u, 23u));

TEST(WireTransport, FullControlPlaneOverBytes) {
  // The whole Fig. 3 control plane — originations, community propagation,
  // suppression, withdrawals — must behave identically when every UPDATE
  // crosses the wire encoder.
  topo::VultrScenario in_memory = topo::make_vultr_scenario();

  topo::VultrScenario on_wire = topo::make_vultr_scenario();
  on_wire.topo.bgp().set_wire_transport(true);

  const net::Prefix ny{on_wire.plan.ny_hosts};
  CommunitySet set;
  for (Asn target : {topo::vultr::kAsnNtt, topo::vultr::kAsnTelia, topo::vultr::kAsnGtt}) {
    in_memory.topo.bgp().originate(topo::vultr::kServerNy, ny, set);
    on_wire.topo.bgp().originate(topo::vultr::kServerNy, ny, set);

    const Route* a = in_memory.topo.bgp().best_route(topo::vultr::kServerLa, ny);
    const Route* b = on_wire.topo.bgp().best_route(topo::vultr::kServerLa, ny);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->as_path, b->as_path) << "wire transport changed the outcome";
    set.add(action::do_not_announce_to(target));
  }
  EXPECT_GT(on_wire.topo.bgp().wire_bytes(), 0u);
}

}  // namespace
}  // namespace tango::bgp::wire
