#include "bgp/as_path.hpp"

#include <gtest/gtest.h>

namespace tango::bgp {
namespace {

TEST(AsPath, EmptyPath) {
  AsPath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.length(), 0u);
  EXPECT_FALSE(p.first().has_value());
  EXPECT_FALSE(p.origin_as().has_value());
  EXPECT_EQ(p.to_string(), "");
}

TEST(AsPath, PrependBuildsPath) {
  AsPath p;
  p = p.prepended(20473);  // origin announces, provider prepends itself...
  p = p.prepended(2914);
  EXPECT_EQ(p.asns(), (std::vector<Asn>{2914, 20473}));
  EXPECT_EQ(p.first(), 2914u);
  EXPECT_EQ(p.origin_as(), 20473u);
  EXPECT_EQ(p.to_string(), "2914 20473");
}

TEST(AsPath, MultiPrepend) {
  AsPath p{20473};
  p = p.prepended(1299, 3);
  EXPECT_EQ(p.asns(), (std::vector<Asn>{1299, 1299, 1299, 20473}));
  EXPECT_EQ(p.length(), 4u);
}

TEST(AsPath, ContainsDetectsLoops) {
  AsPath p{2914, 174, 20473};
  EXPECT_TRUE(p.contains(174));
  EXPECT_FALSE(p.contains(3356));
}

TEST(AsPath, Parse) {
  auto p = AsPath::parse("2914 174 20473");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->asns(), (std::vector<Asn>{2914, 174, 20473}));
  EXPECT_EQ(AsPath::parse("")->length(), 0u);
  EXPECT_EQ(AsPath::parse("  42  ")->asns(), std::vector<Asn>{42});
  EXPECT_FALSE(AsPath::parse("2914 abc").has_value());
}

TEST(AsPath, PrivateAsnDetection) {
  EXPECT_TRUE(is_private_asn(64512));
  EXPECT_TRUE(is_private_asn(65534));
  EXPECT_TRUE(is_private_asn(4200000000u));
  EXPECT_FALSE(is_private_asn(64511));
  EXPECT_FALSE(is_private_asn(65535));
  EXPECT_FALSE(is_private_asn(20473));
}

TEST(AsPath, StripsPrivateAsns) {
  // Vultr propagating a customer announcement made with a private ASN
  // (paper §4.1 footnote 2).
  AsPath p{20473, 64512};
  EXPECT_EQ(p.without_private_asns().asns(), std::vector<Asn>{20473});
  AsPath all_private{64512, 64513};
  EXPECT_TRUE(all_private.without_private_asns().empty());
  AsPath none{2914, 174};
  EXPECT_EQ(none.without_private_asns(), none);
}

TEST(AsPath, UniqueSequenceCollapsesPrepends) {
  AsPath p{2914, 2914, 2914, 174, 20473, 20473};
  EXPECT_EQ(p.unique_sequence(), (std::vector<Asn>{2914, 174, 20473}));
  // Non-adjacent repeats (allowas-in paths) survive.
  AsPath q{20473, 2914, 20473};
  EXPECT_EQ(q.unique_sequence(), (std::vector<Asn>{20473, 2914, 20473}));
}

TEST(AsPath, ComparisonIsStructural) {
  EXPECT_EQ((AsPath{1, 2}), (AsPath{1, 2}));
  EXPECT_NE((AsPath{1, 2}), (AsPath{2, 1}));
  EXPECT_NE((AsPath{1}), (AsPath{1, 1}));
}

/// Property: prepending increases length by `times` and preserves the tail.
class PrependProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrependProperty, LengthAndTail) {
  const auto times = static_cast<std::size_t>(GetParam());
  AsPath base{100, 200, 300};
  AsPath p = base.prepended(999, times);
  EXPECT_EQ(p.length(), base.length() + times);
  EXPECT_EQ(p.origin_as(), base.origin_as());
  for (std::size_t i = 0; i < times; ++i) EXPECT_EQ(p.asns()[i], 999u);
  EXPECT_TRUE(std::equal(base.asns().begin(), base.asns().end(), p.asns().begin() + times));
}

INSTANTIATE_TEST_SUITE_P(Times, PrependProperty, ::testing::Values(1, 2, 3, 5, 10));

}  // namespace
}  // namespace tango::bgp
