// The bench harness's shared environment-flag truthiness: every bench must
// agree on what TANGO_BENCH_QUICK=<x> means.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common.hpp"

namespace tango::bench {
namespace {

class EnvFlagTest : public ::testing::Test {
 protected:
  static constexpr const char* kVar = "TANGO_TEST_FLAG";
  void TearDown() override { ::unsetenv(kVar); }
};

TEST_F(EnvFlagTest, UnsetIsOff) {
  ::unsetenv(kVar);
  EXPECT_FALSE(env_flag_set(kVar));
}

TEST_F(EnvFlagTest, LiteralZeroIsOff) {
  ::setenv(kVar, "0", 1);
  EXPECT_FALSE(env_flag_set(kVar));
}

TEST_F(EnvFlagTest, AnyOtherValueIsOn) {
  for (const char* value : {"1", "true", "yes", "on", "", "00", "2"}) {
    ::setenv(kVar, value, 1);
    EXPECT_TRUE(env_flag_set(kVar)) << "value: \"" << value << "\"";
  }
}

TEST_F(EnvFlagTest, QuickModeReadsTangoBenchQuick) {
  ::unsetenv("TANGO_BENCH_QUICK");
  EXPECT_FALSE(quick_mode());
  ::setenv("TANGO_BENCH_QUICK", "1", 1);
  EXPECT_TRUE(quick_mode());
  ::setenv("TANGO_BENCH_QUICK", "0", 1);
  EXPECT_FALSE(quick_mode());
  ::unsetenv("TANGO_BENCH_QUICK");
}

}  // namespace
}  // namespace tango::bench
