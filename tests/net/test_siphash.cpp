#include "net/siphash.hpp"

#include <gtest/gtest.h>

namespace tango::net {
namespace {

/// The reference implementation's test setting: key = 00 01 02 ... 0f
/// (little-endian k0/k1), input = 00 01 02 ... (n-1).
SipHashKey reference_key() {
  return SipHashKey{.k0 = 0x0706050403020100ull, .k1 = 0x0f0e0d0c0b0a0908ull};
}

std::vector<std::uint8_t> counting_input(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i);
  return v;
}

TEST(SipHash, OfficialVectors) {
  // First entries of the official vectors_sip64 table from the SipHash
  // reference implementation (https://github.com/veorq/SipHash), stored
  // there little-endian; written here as u64 values.
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ull,  // len 0
      0x74f839c593dc67fdull,  // len 1
      0x0d6c8009d9a94f5aull,  // len 2
      0x85676696d7fb7e2dull,  // len 3
      0xcf2794e0277187b7ull,  // len 4
      0x18765564cd99a68dull,  // len 5
      0xcbc9466e58fee3ceull,  // len 6
      0xab0200f58b01d137ull,  // len 7
      0x93f5f5799a932462ull,  // len 8
      0x9e0082df0ba9e4b0ull,  // len 9
      0x7a5dbbc594ddb9f3ull,  // len 10
      0xf4b32f46226bada7ull,  // len 11
      0x751e8fbc860ee5fbull,  // len 12
      0x14ea5627c0843d90ull,  // len 13
      0xf723ca908e7af2eeull,  // len 14
      0xa129ca6149be45e5ull,  // len 15
  };
  const SipHashKey key = reference_key();
  for (std::size_t n = 0; n < std::size(expected); ++n) {
    EXPECT_EQ(siphash24(key, counting_input(n)), expected[n]) << "length " << n;
  }
}

TEST(SipHash, KeySensitivity) {
  const auto data = counting_input(32);
  const std::uint64_t base = siphash24(reference_key(), data);
  SipHashKey other = reference_key();
  other.k0 ^= 1;
  EXPECT_NE(siphash24(other, data), base);
  other = reference_key();
  other.k1 ^= 0x8000000000000000ull;
  EXPECT_NE(siphash24(other, data), base);
}

TEST(SipHash, InputSensitivity) {
  const SipHashKey key = reference_key();
  auto data = counting_input(64);
  const std::uint64_t base = siphash24(key, data);
  for (std::size_t byte = 0; byte < data.size(); byte += 7) {
    auto tampered = data;
    tampered[byte] ^= 0x01;
    EXPECT_NE(siphash24(key, tampered), base) << "byte " << byte;
  }
  // Length extension: same prefix, one extra byte.
  auto longer = data;
  longer.push_back(0);
  EXPECT_NE(siphash24(key, longer), base);
}

TEST(SipHash, Deterministic) {
  const SipHashKey key{.k0 = 42, .k1 = 4242};
  const auto data = counting_input(100);
  EXPECT_EQ(siphash24(key, data), siphash24(key, data));
}

}  // namespace
}  // namespace tango::net
