#include "net/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>

namespace tango::net {
namespace {

Ipv6Prefix pfx(const char* text) { return *Ipv6Prefix::parse(text); }
Ipv6Address addr(const char* text) { return *Ipv6Address::parse(text); }

TEST(PrefixTrie, EmptyLookupsMiss) {
  PrefixTrie<int> trie;
  EXPECT_EQ(trie.lookup(addr("2001:db8::1")), nullptr);
  EXPECT_EQ(trie.find(pfx("::/0")), nullptr);
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, InsertAndExactMatch) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(pfx("2001:db8::/32"), 1));
  EXPECT_FALSE(trie.insert(pfx("2001:db8::/32"), 2));  // overwrite
  ASSERT_NE(trie.find(pfx("2001:db8::/32")), nullptr);
  EXPECT_EQ(*trie.find(pfx("2001:db8::/32")), 2);
  EXPECT_EQ(trie.size(), 1u);
  // Same bits, different length: distinct entry.
  EXPECT_TRUE(trie.insert(pfx("2001:db8::/48"), 3));
  EXPECT_EQ(trie.size(), 2u);
}

TEST(PrefixTrie, LongestPrefixMatchPrefersDeeper) {
  PrefixTrie<int> trie;
  trie.insert(pfx("::/0"), 0);
  trie.insert(pfx("2001:db8::/32"), 32);
  trie.insert(pfx("2001:db8:1::/48"), 48);

  EXPECT_EQ(*trie.lookup(addr("9999::1")), 0);
  EXPECT_EQ(*trie.lookup(addr("2001:db8:ffff::1")), 32);
  EXPECT_EQ(*trie.lookup(addr("2001:db8:1::77")), 48);
}

TEST(PrefixTrie, LookupEntryReportsMatchedPrefix) {
  PrefixTrie<int> trie;
  trie.insert(pfx("2620:110:9011::/48"), 7);
  auto entry = trie.lookup_entry(addr("2620:110:9011::1"));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first, pfx("2620:110:9011::/48"));
  EXPECT_EQ(entry->second, 7);
  EXPECT_FALSE(trie.lookup_entry(addr("2620:110:9012::1")).has_value());
}

TEST(PrefixTrie, EraseRemovesOnlyExact) {
  PrefixTrie<int> trie;
  trie.insert(pfx("2001:db8::/32"), 1);
  trie.insert(pfx("2001:db8:1::/48"), 2);
  EXPECT_FALSE(trie.erase(pfx("2001:db8::/31")));
  EXPECT_TRUE(trie.erase(pfx("2001:db8::/32")));
  EXPECT_EQ(trie.lookup(addr("2001:db8:2::1")), nullptr);   // /32 gone
  EXPECT_EQ(*trie.lookup(addr("2001:db8:1::1")), 2);        // /48 intact
  EXPECT_FALSE(trie.erase(pfx("2001:db8::/32")));           // already gone
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, EntriesEnumerateEverything) {
  PrefixTrie<int> trie;
  trie.insert(pfx("::/0"), 0);
  trie.insert(pfx("8000::/1"), 1);
  trie.insert(pfx("2001:db8::/32"), 2);
  auto entries = trie.entries();
  EXPECT_EQ(entries.size(), 3u);
  std::map<std::string, int> by_text;
  for (const auto& [p, v] : entries) by_text[p.to_string()] = v;
  EXPECT_EQ(by_text.at("::/0"), 0);
  EXPECT_EQ(by_text.at("8000::/1"), 1);
  EXPECT_EQ(by_text.at("2001:db8::/32"), 2);
}

TEST(PrefixTrie, DefaultRouteOnly) {
  PrefixTrie<int> trie;
  trie.insert(pfx("::/0"), 42);
  EXPECT_EQ(*trie.lookup(addr("::")), 42);
  EXPECT_EQ(*trie.lookup(addr("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff")), 42);
}

TEST(PrefixTrie, FullLengthPrefix) {
  PrefixTrie<int> trie;
  trie.insert(Ipv6Prefix{addr("2001:db8::1"), 128}, 9);
  EXPECT_EQ(*trie.lookup(addr("2001:db8::1")), 9);
  EXPECT_EQ(trie.lookup(addr("2001:db8::2")), nullptr);
}

TEST(PrefixTrie, V4MappedHelpers) {
  EXPECT_EQ(v4_mapped(Ipv4Address{192, 0, 2, 1}), addr("::ffff:192.0.2.1"));
  auto mapped = v4_mapped(*Ipv4Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(mapped.length(), 104);
  EXPECT_TRUE(mapped.contains(v4_mapped(Ipv4Address{10, 9, 8, 7})));
  EXPECT_FALSE(mapped.contains(v4_mapped(Ipv4Address{11, 0, 0, 1})));

  PrefixTrie<int> trie;
  trie.insert(trie_key(*Prefix::parse("10.0.0.0/8")), 4);
  trie.insert(trie_key(*Prefix::parse("2001:db8::/32")), 6);
  EXPECT_EQ(*trie.lookup(trie_key(*IpAddress::parse("10.1.1.1"))), 4);
  EXPECT_EQ(*trie.lookup(trie_key(*IpAddress::parse("2001:db8::9"))), 6);
}

/// Property test: trie longest-prefix-match agrees with a brute-force linear
/// scan over random prefix sets and random lookup addresses.
class TrieVsLinear : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TrieVsLinear, AgreesWithBruteForce) {
  std::mt19937_64 rng{GetParam()};
  auto random_addr = [&rng]() {
    Ipv6Address::Bytes b{};
    // Cluster addresses in a narrow space so prefixes actually collide.
    b[0] = 0x20;
    b[1] = 0x01;
    for (std::size_t i = 2; i < 6; ++i) b[i] = static_cast<std::uint8_t>(rng() % 4);
    for (std::size_t i = 6; i < 16; ++i) b[i] = static_cast<std::uint8_t>(rng());
    return Ipv6Address{b};
  };

  PrefixTrie<int> trie;
  std::vector<std::pair<Ipv6Prefix, int>> linear;
  for (int i = 0; i < 200; ++i) {
    const auto len = static_cast<std::uint8_t>(rng() % 65);
    Ipv6Prefix p{random_addr(), len};
    trie.insert(p, i);
    // Mirror overwrite semantics in the linear copy.
    bool replaced = false;
    for (auto& [lp, lv] : linear) {
      if (lp == p) {
        lv = i;
        replaced = true;
        break;
      }
    }
    if (!replaced) linear.emplace_back(p, i);
  }

  for (int q = 0; q < 500; ++q) {
    const Ipv6Address a = random_addr();
    // Brute force: the longest containing prefix wins; ties impossible
    // (same prefix+length collapses to one entry).
    const std::pair<Ipv6Prefix, int>* best = nullptr;
    for (const auto& entry : linear) {
      if (!entry.first.contains(a)) continue;
      if (best == nullptr || entry.first.length() > best->first.length()) best = &entry;
    }
    const int* got = trie.lookup(a);
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr) << a.to_string();
      EXPECT_EQ(*got, best->second) << a.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieVsLinear, ::testing::Values(1u, 2u, 3u, 42u, 1337u));

}  // namespace
}  // namespace tango::net
