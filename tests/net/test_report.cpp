// Wire-format feedback reports (§6): fail-closed parsing, bit-exact double
// roundtrips, and an authentication tag that covers every field — the flags
// byte included.
#include "net/report.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/time.hpp"

namespace tango::net {
namespace {

const SipHashKey kKey{.k0 = 0x746f6e6779776f6eull, .k1 = 0x74616e676f746e67ull};
const SipHashKey kWrongKey{.k0 = 1, .k1 = 2};

ReportEnvelope sample_envelope() {
  ReportEnvelope e;
  e.path_id = 3;
  e.report_seq = 41;
  e.owd_ewma_ms = 28.375;
  e.jitter_ms = 0.625;
  e.loss_rate = 0.015625;
  e.samples = 1234;
  e.lost = 7;
  e.updated_at = 5 * sim::kSecond;
  return e;
}

std::vector<std::uint8_t> wire_bytes(const ReportEnvelope& e) {
  ByteWriter w;
  e.serialize(w);
  return std::move(w).take();
}

TEST(ReportEnvelope, RoundTripsUnauthenticated) {
  const ReportEnvelope e = sample_envelope();
  const auto bytes = wire_bytes(e);
  EXPECT_EQ(bytes.size(), ReportEnvelope::kSize);
  ByteReader r{bytes};
  const auto parsed = ReportEnvelope::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, e);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ReportEnvelope, RoundTripsAuthenticated) {
  ReportEnvelope e = sample_envelope();
  e.flags |= ReportEnvelope::kFlagAuthenticated;
  e.auth_tag = report_auth_tag(kKey, e);
  const auto bytes = wire_bytes(e);
  EXPECT_EQ(bytes.size(), ReportEnvelope::kSize + ReportEnvelope::kAuthTagSize);
  ByteReader r{bytes};
  const auto parsed = ReportEnvelope::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, e);
  EXPECT_EQ(parsed->auth_tag, report_auth_tag(kKey, *parsed));
}

TEST(ReportEnvelope, DoubleBitsSurviveExactly) {
  // The digest-equality gates rest on bit-exact doubles; decimal text or a
  // float trip would round.  Denormals and negative zero must survive too.
  ReportEnvelope e = sample_envelope();
  e.owd_ewma_ms = std::nextafter(28.0, 29.0);
  e.jitter_ms = -0.0;
  e.loss_rate = 5e-324;  // smallest denormal
  const auto bytes = wire_bytes(e);
  ByteReader r{bytes};
  const auto parsed = ReportEnvelope::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed->owd_ewma_ms),
            std::bit_cast<std::uint64_t>(e.owd_ewma_ms));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed->jitter_ms),
            std::bit_cast<std::uint64_t>(e.jitter_ms));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed->loss_rate),
            std::bit_cast<std::uint64_t>(e.loss_rate));
}

TEST(ReportEnvelope, BadMagicFailsWithoutConsuming) {
  auto bytes = wire_bytes(sample_envelope());
  bytes[0] ^= 0xFF;
  ByteReader r{bytes};
  EXPECT_FALSE(ReportEnvelope::parse(r).has_value());
  EXPECT_EQ(r.position(), 0u) << "failed parse must leave the reader untouched";
}

TEST(ReportEnvelope, UnknownVersionRejected) {
  auto bytes = wire_bytes(sample_envelope());
  bytes[2] = ReportEnvelope::kVersion + 1;
  ByteReader r{bytes};
  EXPECT_FALSE(ReportEnvelope::parse(r).has_value());
  EXPECT_EQ(r.position(), 0u);
}

TEST(ReportEnvelope, EveryTruncationRejected) {
  ReportEnvelope e = sample_envelope();
  e.flags |= ReportEnvelope::kFlagAuthenticated;
  e.auth_tag = report_auth_tag(kKey, e);
  const auto full = wire_bytes(e);
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> cut{full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len)};
    ByteReader r{cut};
    EXPECT_FALSE(ReportEnvelope::parse(r).has_value()) << "length " << len;
    EXPECT_EQ(r.position(), 0u) << "length " << len;
  }
}

TEST(ReportEnvelope, TagCoversEveryField) {
  ReportEnvelope e = sample_envelope();
  e.flags |= ReportEnvelope::kFlagAuthenticated;
  const std::uint64_t base = report_auth_tag(kKey, e);

  const auto differs = [&](auto&& mutate) {
    ReportEnvelope m = e;
    mutate(m);
    return report_auth_tag(kKey, m) != base;
  };
  EXPECT_TRUE(differs([](ReportEnvelope& m) { m.path_id = 4; }));
  EXPECT_TRUE(differs([](ReportEnvelope& m) { m.report_seq = 42; }));
  EXPECT_TRUE(differs([](ReportEnvelope& m) { m.owd_ewma_ms = 1.0; }));
  EXPECT_TRUE(differs([](ReportEnvelope& m) { m.jitter_ms = 1.0; }));
  EXPECT_TRUE(differs([](ReportEnvelope& m) { m.loss_rate = 1.0; }));
  EXPECT_TRUE(differs([](ReportEnvelope& m) { m.samples = 1; }));
  EXPECT_TRUE(differs([](ReportEnvelope& m) { m.lost = 1; }));
  EXPECT_TRUE(differs([](ReportEnvelope& m) { m.updated_at = 1; }));
  EXPECT_TRUE(differs([](ReportEnvelope& m) { m.version = 2; }));
  // The data-path header once omitted flags from its MAC; the envelope must
  // not repeat that mistake — a flipped flag bit invalidates the tag.
  EXPECT_TRUE(differs([](ReportEnvelope& m) { m.flags |= 0x80; }));
  EXPECT_NE(report_auth_tag(kWrongKey, e), base);
}

}  // namespace
}  // namespace tango::net
