#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace tango::net {
namespace {

TEST(Checksum, Rfc1071WorkedExample) {
  // The classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, EmptyBufferIsAllOnes) {
  EXPECT_EQ(internet_checksum(std::vector<std::uint8_t>{}), 0xFFFF);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> odd{0x12, 0x34, 0x56};
  const std::vector<std::uint8_t> even{0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(Checksum, PartialSumsChain) {
  const std::vector<std::uint8_t> all{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
  const std::vector<std::uint8_t> a{0xde, 0xad};
  const std::vector<std::uint8_t> b{0xbe, 0xef, 0x01, 0x02};
  const auto chained = checksum_finish(checksum_partial(b, checksum_partial(a)));
  EXPECT_EQ(chained, internet_checksum(all));
}

TEST(Udp6Checksum, ValidSegmentVerifies) {
  const Ipv6Address src = *Ipv6Address::parse("2620:110:9001::1");
  const Ipv6Address dst = *Ipv6Address::parse("2620:110:9011::1");
  // Build a UDP segment: header (ports 7654/7654, length) + payload.
  std::vector<std::uint8_t> seg{0x1d, 0xe6, 0x1d, 0xe6, 0x00, 0x0c,
                                0x00, 0x00,  // checksum placeholder
                                0xde, 0xad, 0xbe, 0xef};
  const std::uint16_t csum = udp6_checksum(src, dst, seg);
  seg[6] = static_cast<std::uint8_t>(csum >> 8);
  seg[7] = static_cast<std::uint8_t>(csum);
  EXPECT_TRUE(udp6_checksum_ok(src, dst, seg));
}

TEST(Udp6Checksum, DetectsSingleBitFlipsEverywhere) {
  const Ipv6Address src = *Ipv6Address::parse("2001:db8::1");
  const Ipv6Address dst = *Ipv6Address::parse("2001:db8::2");
  std::vector<std::uint8_t> seg{0x30, 0x39, 0x1d, 0xe6, 0x00, 0x10, 0x00, 0x00,
                                0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  const std::uint16_t csum = udp6_checksum(src, dst, seg);
  seg[6] = static_cast<std::uint8_t>(csum >> 8);
  seg[7] = static_cast<std::uint8_t>(csum);
  ASSERT_TRUE(udp6_checksum_ok(src, dst, seg));

  for (std::size_t byte = 0; byte < seg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = seg;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(udp6_checksum_ok(src, dst, corrupted))
          << "flip at byte " << byte << " bit " << bit << " undetected";
    }
  }
}

TEST(Udp6Checksum, DetectsWrongPseudoHeader) {
  const Ipv6Address src = *Ipv6Address::parse("2001:db8::1");
  const Ipv6Address dst = *Ipv6Address::parse("2001:db8::2");
  std::vector<std::uint8_t> seg{0x30, 0x39, 0x1d, 0xe6, 0x00, 0x0a, 0x00, 0x00, 0xaa, 0xbb};
  const std::uint16_t csum = udp6_checksum(src, dst, seg);
  seg[6] = static_cast<std::uint8_t>(csum >> 8);
  seg[7] = static_cast<std::uint8_t>(csum);
  // Swap src/dst roles: different pseudo-header must fail unless symmetric —
  // use a genuinely different address.
  EXPECT_FALSE(udp6_checksum_ok(src, *Ipv6Address::parse("2001:db8::3"), seg));
}

TEST(Udp6Checksum, NeverEmitsZero) {
  // RFC 768: a computed 0 is sent as 0xFFFF.  Find inputs by brute force:
  // any result is acceptable as long as it is nonzero.
  std::mt19937_64 rng{7};
  const Ipv6Address src = *Ipv6Address::parse("2001:db8::1");
  const Ipv6Address dst = *Ipv6Address::parse("2001:db8::2");
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> seg(10);
    for (auto& b : seg) b = static_cast<std::uint8_t>(rng());
    seg[6] = seg[7] = 0;
    EXPECT_NE(udp6_checksum(src, dst, seg), 0);
  }
}

}  // namespace
}  // namespace tango::net
