#include "net/prefix.hpp"

#include <gtest/gtest.h>

namespace tango::net {
namespace {

TEST(Ipv6Prefix, CanonicalizesHostBits) {
  auto addr = *Ipv6Address::parse("2001:db8::ffff");
  Ipv6Prefix p{addr, 32};
  EXPECT_EQ(p.address(), *Ipv6Address::parse("2001:db8::"));
  EXPECT_EQ(p.to_string(), "2001:db8::/32");
}

TEST(Ipv6Prefix, CanonicalizationMidByte) {
  auto addr = *Ipv6Address::parse("ffff::");
  Ipv6Prefix p{addr, 3};
  EXPECT_EQ(p.address(), *Ipv6Address::parse("e000::"));
}

TEST(Ipv6Prefix, ThrowsOnBadLength) {
  EXPECT_THROW((Ipv6Prefix{Ipv6Address{}, 129}), std::invalid_argument);
}

TEST(Ipv6Prefix, Parse) {
  auto p = Ipv6Prefix::parse("2620:110:9001::/48");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 48);
  EXPECT_FALSE(Ipv6Prefix::parse("2620:110:9001::").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("2620:110:9001::/129").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("junk/48").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::/ 48").has_value());
}

TEST(Ipv6Prefix, ContainsAddress) {
  auto p = *Ipv6Prefix::parse("2001:db8::/32");
  EXPECT_TRUE(p.contains(*Ipv6Address::parse("2001:db8::1")));
  EXPECT_TRUE(p.contains(*Ipv6Address::parse("2001:db8:ffff::")));
  EXPECT_FALSE(p.contains(*Ipv6Address::parse("2001:db9::")));
}

TEST(Ipv6Prefix, ContainsPrefix) {
  auto p32 = *Ipv6Prefix::parse("2001:db8::/32");
  auto p48 = *Ipv6Prefix::parse("2001:db8:1::/48");
  EXPECT_TRUE(p32.contains(p48));
  EXPECT_FALSE(p48.contains(p32));
  EXPECT_TRUE(p32.contains(p32));
  EXPECT_TRUE(p32.overlaps(p48));
  EXPECT_TRUE(p48.overlaps(p32));
  EXPECT_FALSE(p48.overlaps(*Ipv6Prefix::parse("2001:db8:2::/48")));
}

TEST(Ipv6Prefix, ZeroLengthContainsEverything) {
  Ipv6Prefix any{Ipv6Address{}, 0};
  EXPECT_TRUE(any.contains(*Ipv6Address::parse("ffff::1")));
  EXPECT_TRUE(any.contains(*Ipv6Prefix::parse("1::/16")));
}

TEST(Ipv6Prefix, SubnetCarving) {
  auto p44 = *Ipv6Prefix::parse("2620:110:9000::/44");
  EXPECT_EQ(p44.subnet(48, 0).to_string(), "2620:110:9000::/48");
  EXPECT_EQ(p44.subnet(48, 1).to_string(), "2620:110:9001::/48");
  EXPECT_EQ(p44.subnet(48, 15).to_string(), "2620:110:900f::/48");
  // void-casts: subnet() is [[nodiscard]] and -Wunused-result fires inside
  // EXPECT_THROW's statement expansion.
  EXPECT_THROW((void)p44.subnet(48, 16), std::out_of_range);
  EXPECT_THROW((void)p44.subnet(40, 0), std::invalid_argument);
  // Every subnet is contained in the parent and distinct.
  EXPECT_TRUE(p44.contains(p44.subnet(48, 7)));
  EXPECT_NE(p44.subnet(48, 7), p44.subnet(48, 8));
}

TEST(Ipv6Prefix, HostSynthesis) {
  auto p = *Ipv6Prefix::parse("2620:110:9011::/48");
  EXPECT_EQ(p.host(1), *Ipv6Address::parse("2620:110:9011::1"));
  EXPECT_EQ(p.host(0x1234), *Ipv6Address::parse("2620:110:9011::1234"));
  EXPECT_TRUE(p.contains(p.host(0xdeadbeef)));
}

TEST(Ipv4Prefix, Basics) {
  auto p = Ipv4Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->contains(Ipv4Address{10, 255, 0, 1}));
  EXPECT_FALSE(p->contains(Ipv4Address{11, 0, 0, 1}));
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
}

TEST(Ipv4Prefix, CanonicalizesAndValidates) {
  Ipv4Prefix p{Ipv4Address{192, 168, 255, 255}, 16};
  EXPECT_EQ(p.to_string(), "192.168.0.0/16");
  EXPECT_THROW((Ipv4Prefix{Ipv4Address{}, 33}), std::invalid_argument);
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33").has_value());
}

TEST(Ipv4Prefix, ZeroLength) {
  auto p = *Ipv4Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(p.contains(Ipv4Address{255, 255, 255, 255}));
}

TEST(Prefix, VersionErased) {
  auto p4 = *Prefix::parse("10.0.0.0/8");
  auto p6 = *Prefix::parse("2001:db8::/32");
  EXPECT_TRUE(p4.is_v4());
  EXPECT_TRUE(p6.is_v6());
  EXPECT_TRUE(p4.contains(*IpAddress::parse("10.1.2.3")));
  EXPECT_FALSE(p4.contains(*IpAddress::parse("2001:db8::1")));  // family mismatch
  EXPECT_TRUE(p6.contains(*IpAddress::parse("2001:db8::1")));
  EXPECT_EQ(p6.length(), 32);
  EXPECT_NE(p4, p6);
}

/// Property: for any prefix and any index, subnet(i) and subnet(j) with
/// i != j never overlap.
class SubnetDisjoint : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SubnetDisjoint, PairwiseDisjoint) {
  auto [i, j] = GetParam();
  auto parent = *Ipv6Prefix::parse("2620:110:9000::/44");
  auto a = parent.subnet(48, static_cast<std::uint64_t>(i));
  auto b = parent.subnet(48, static_cast<std::uint64_t>(j));
  if (i == j) {
    EXPECT_EQ(a, b);
  } else {
    EXPECT_FALSE(a.overlaps(b)) << a.to_string() << " vs " << b.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs, SubnetDisjoint,
                         ::testing::Values(std::pair{0, 0}, std::pair{0, 1}, std::pair{1, 2},
                                           std::pair{3, 12}, std::pair{15, 0},
                                           std::pair{7, 7}, std::pair{14, 15}));

}  // namespace
}  // namespace tango::net
