#include "net/ipv4_header.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace tango::net {
namespace {

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h{.dscp_ecn = 0x2E,
               .total_length = 100,
               .identification = 0x1234,
               .ttl = 61,
               .protocol = Ipv4Header::kProtocolUdp,
               .src = Ipv4Address{203, 0, 113, 1},
               .dst = Ipv4Address{198, 51, 100, 2}};
  ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), Ipv4Header::kSize);

  ByteReader r{w.view()};
  Ipv4Header parsed = Ipv4Header::parse(r);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_EQ(parsed.ttl, 61);
  EXPECT_EQ(parsed.total_length, 100);
  EXPECT_NE(parsed.header_checksum, 0);
}

TEST(Ipv4Header, ChecksumValidatedOnParse) {
  Ipv4Header h{.total_length = 20, .src = Ipv4Address{1, 2, 3, 4},
               .dst = Ipv4Address{5, 6, 7, 8}};
  ByteWriter w;
  h.serialize(w);
  auto bytes = std::vector<std::uint8_t>{w.view().begin(), w.view().end()};
  // Flip a source-address bit: the checksum no longer matches.
  bytes[12] ^= 0x01;
  ByteReader r{bytes};
  EXPECT_THROW(Ipv4Header::parse(r), std::invalid_argument);
}

TEST(Ipv4Header, RejectsWrongVersionAndOptions) {
  Ipv4Header h{.total_length = 20};
  ByteWriter w;
  h.serialize(w);
  auto bytes = std::vector<std::uint8_t>{w.view().begin(), w.view().end()};

  auto v6 = bytes;
  v6[0] = 0x65;  // version 6 with IHL 5: checksum breaks too, but version first
  ByteReader r1{v6};
  EXPECT_THROW(Ipv4Header::parse(r1), std::invalid_argument);

  ByteReader r2{std::span<const std::uint8_t>{bytes.data(), 10}};
  EXPECT_THROW(Ipv4Header::parse(r2), std::invalid_argument);
}

TEST(Ipv4Packet, BuildAndInspect) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  Packet p = make_udp4_packet(Ipv4Address{10, 0, 0, 1}, Ipv4Address{10, 0, 0, 2}, 1000, 2000,
                              payload);
  EXPECT_EQ(p.version(), 4);
  EXPECT_EQ(p.size(), Ipv4Header::kSize + UdpHeader::kSize + payload.size());
  const Ipv4Header ip = p.ip4();
  EXPECT_EQ(ip.total_length, p.size());
  EXPECT_EQ(ip.dst, (Ipv4Address{10, 0, 0, 2}));

  Packet v6 = make_udp_packet(*Ipv6Address::parse("::1"), *Ipv6Address::parse("::2"), 1, 2,
                              payload);
  EXPECT_EQ(v6.version(), 6);
  EXPECT_EQ(Packet{}.version(), 0);
}

TEST(Ipv4Packet, TtlDecrementKeepsChecksumValid) {
  const std::vector<std::uint8_t> payload{9};
  Packet p = make_udp4_packet(Ipv4Address{192, 0, 2, 1}, Ipv4Address{192, 0, 2, 2}, 1, 2,
                              payload, /*ttl=*/3);
  for (int expected = 2; expected >= 0; --expected) {
    ASSERT_TRUE(p.decrement_ttl_v4());
    // parse() re-verifies the checksum: the incremental update must hold.
    EXPECT_EQ(p.ip4().ttl, expected);
  }
  EXPECT_FALSE(p.decrement_ttl_v4()) << "TTL 0 must signal drop";
}

TEST(Ipv4Packet, RidesInsideTangoTunnel) {
  // 4in6: the inner packet is opaque bytes to the tunnel; it must survive
  // encapsulation byte-identically.
  const std::vector<std::uint8_t> payload{7, 7, 7};
  const Packet inner = make_udp4_packet(Ipv4Address{10, 1, 0, 1}, Ipv4Address{10, 2, 0, 1},
                                        1000, 2000, payload);
  TangoHeader th;
  th.path_id = 2;
  const Packet wan = encapsulate_tango(inner, *Ipv6Address::parse("2620:110:9001::1"),
                                       *Ipv6Address::parse("2620:110:9011::1"), 49153, th);
  EXPECT_EQ(wan.version(), 6) << "outer is always IPv6";
  auto decoded = decapsulate_tango(wan);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->inner, inner);
  EXPECT_EQ(decoded->inner.version(), 4);
}

}  // namespace
}  // namespace tango::net
