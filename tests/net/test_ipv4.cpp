#include "net/ipv4_header.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/packet.hpp"

namespace tango::net {
namespace {

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h{.dscp_ecn = 0x2E,
               .total_length = 100,
               .identification = 0x1234,
               .ttl = 61,
               .protocol = Ipv4Header::kProtocolUdp,
               .src = Ipv4Address{203, 0, 113, 1},
               .dst = Ipv4Address{198, 51, 100, 2}};
  ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), Ipv4Header::kSize);

  ByteReader r{w.view()};
  const auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->ttl, 61);
  EXPECT_EQ(parsed->total_length, 100);
  EXPECT_NE(parsed->header_checksum, 0);
}

TEST(Ipv4Header, OptionsRoundTripByteExact) {
  Ipv4Header h{.total_length = 100,
               .ttl = 61,
               .protocol = Ipv4Header::kProtocolUdp,
               .src = Ipv4Address{203, 0, 113, 1},
               .dst = Ipv4Address{198, 51, 100, 2}};
  // Router-alert option (RFC 2113) padded to a 4-byte multiple.
  h.options = {0x94, 0x04, 0x00, 0x00};
  ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), Ipv4Header::kSize + h.options.size());
  EXPECT_EQ(w.view()[0], 0x46) << "IHL must count the options";

  ByteReader r{w.view()};
  const auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->options, h.options);
  EXPECT_EQ(parsed->header_length(), 24u);

  // Differential: re-encoding the parse result reproduces the input bytes.
  ByteWriter w2;
  parsed->serialize(w2);
  EXPECT_TRUE(std::equal(w.view().begin(), w.view().end(), w2.view().begin(), w2.view().end()));
}

TEST(Ipv4Header, SerializeRejectsBadOptionSizes) {
  Ipv4Header h{.total_length = 24};
  h.options = {1, 2, 3};  // not a 4-byte multiple
  ByteWriter w;
  EXPECT_THROW(h.serialize(w), std::invalid_argument);
  h.options.assign(44, 0);  // exceeds the 40-byte IHL ceiling
  EXPECT_THROW(h.serialize(w), std::invalid_argument);
}

TEST(Ipv4Header, ChecksumValidatedOnParse) {
  Ipv4Header h{.total_length = 20, .src = Ipv4Address{1, 2, 3, 4},
               .dst = Ipv4Address{5, 6, 7, 8}};
  ByteWriter w;
  h.serialize(w);
  auto bytes = std::vector<std::uint8_t>{w.view().begin(), w.view().end()};
  // Flip a source-address bit: the checksum no longer matches.
  bytes[12] ^= 0x01;
  ByteReader r{bytes};
  EXPECT_FALSE(Ipv4Header::parse(r).has_value());
}

TEST(Ipv4Header, RejectsWrongVersionAndTruncation) {
  Ipv4Header h{.total_length = 20};
  ByteWriter w;
  h.serialize(w);
  auto bytes = std::vector<std::uint8_t>{w.view().begin(), w.view().end()};

  auto v6 = bytes;
  v6[0] = 0x65;  // version 6 with IHL 5: checksum breaks too, but version first
  ByteReader r1{v6};
  EXPECT_FALSE(Ipv4Header::parse(r1).has_value());

  ByteReader r2{std::span<const std::uint8_t>{bytes.data(), 10}};
  EXPECT_FALSE(Ipv4Header::parse(r2).has_value());
  EXPECT_EQ(r2.remaining(), 10u) << "a failed parse must not consume bytes it cannot decode";
}

// Regression: an IHL below 5 describes a header shorter than the fixed
// fields.  The old parser would have read the fixed 20 bytes anyway,
// silently mis-framing everything after the (shorter) true header.
TEST(Ipv4Header, RejectsIhlBelowMinimum) {
  Ipv4Header h{.total_length = 20};
  ByteWriter w;
  h.serialize(w);
  for (std::uint8_t ihl = 0; ihl < 5; ++ihl) {
    auto bytes = std::vector<std::uint8_t>{w.view().begin(), w.view().end()};
    bytes[0] = static_cast<std::uint8_t>(0x40 | ihl);
    // Patch the checksum so the IHL check, not the checksum, is what rejects.
    bytes[10] = bytes[11] = 0;
    const std::uint16_t sum = internet_checksum(std::span<const std::uint8_t>{bytes}.first(20));
    bytes[10] = static_cast<std::uint8_t>(sum >> 8);
    bytes[11] = static_cast<std::uint8_t>(sum & 0xFF);
    ByteReader r{bytes};
    EXPECT_FALSE(Ipv4Header::parse(r).has_value()) << "IHL " << int{ihl};
  }
}

// Regression: an IHL that promises more option bytes than the buffer holds
// must fail cleanly instead of reading past the end.
TEST(Ipv4Header, RejectsTruncatedOptions) {
  Ipv4Header h{.total_length = 100};
  h.options = {0x94, 0x04, 0x00, 0x00, 0x01, 0x01, 0x01, 0x01};
  ByteWriter w;
  h.serialize(w);
  // Keep the fixed header plus half of the options.
  ByteReader r{w.view().first(Ipv4Header::kSize + 4)};
  EXPECT_FALSE(Ipv4Header::parse(r).has_value());
}

// Regression: total_length < header length implies a negative-size payload;
// downstream subtraction would wrap around to a huge span.
TEST(Ipv4Header, RejectsTotalLengthShorterThanHeader) {
  Ipv4Header h{.total_length = 19};  // one byte short of the fixed header
  ByteWriter w;
  h.serialize(w);
  ByteReader r{w.view()};
  EXPECT_FALSE(Ipv4Header::parse(r).has_value());

  Ipv4Header with_opts{.total_length = 22};  // covers kSize but not the options
  with_opts.options = {0x01, 0x01, 0x01, 0x01};
  ByteWriter w2;
  with_opts.serialize(w2);
  ByteReader r2{w2.view()};
  EXPECT_FALSE(Ipv4Header::parse(r2).has_value());
}

TEST(Ipv4Packet, BuildAndInspect) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  Packet p = make_udp4_packet(Ipv4Address{10, 0, 0, 1}, Ipv4Address{10, 0, 0, 2}, 1000, 2000,
                              payload);
  EXPECT_EQ(p.version(), 4);
  EXPECT_EQ(p.size(), Ipv4Header::kSize + UdpHeader::kSize + payload.size());
  const auto ip = p.ip4();
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->total_length, p.size());
  EXPECT_EQ(ip->dst, (Ipv4Address{10, 0, 0, 2}));

  Packet v6 = make_udp_packet(*Ipv6Address::parse("::1"), *Ipv6Address::parse("::2"), 1, 2,
                              payload);
  EXPECT_EQ(v6.version(), 6);
  EXPECT_EQ(Packet{}.version(), 0);
}

TEST(Ipv4Packet, TtlDecrementKeepsChecksumValid) {
  const std::vector<std::uint8_t> payload{9};
  Packet p = make_udp4_packet(Ipv4Address{192, 0, 2, 1}, Ipv4Address{192, 0, 2, 2}, 1, 2,
                              payload, /*ttl=*/3);
  for (int expected = 2; expected >= 0; --expected) {
    ASSERT_TRUE(p.decrement_ttl_v4());
    // parse() re-verifies the checksum: the incremental update must hold.
    ASSERT_TRUE(p.ip4().has_value());
    EXPECT_EQ(p.ip4()->ttl, expected);
  }
  EXPECT_FALSE(p.decrement_ttl_v4()) << "TTL 0 must signal drop";
}

TEST(Ipv4Packet, RidesInsideTangoTunnel) {
  // 4in6: the inner packet is opaque bytes to the tunnel; it must survive
  // encapsulation byte-identically.
  const std::vector<std::uint8_t> payload{7, 7, 7};
  const Packet inner = make_udp4_packet(Ipv4Address{10, 1, 0, 1}, Ipv4Address{10, 2, 0, 1},
                                        1000, 2000, payload);
  TangoHeader th;
  th.path_id = 2;
  const Packet wan = encapsulate_tango(inner, *Ipv6Address::parse("2620:110:9001::1"),
                                       *Ipv6Address::parse("2620:110:9011::1"), 49153, th);
  EXPECT_EQ(wan.version(), 6) << "outer is always IPv6";
  auto decoded = decapsulate_tango(wan);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->inner, inner);
  EXPECT_EQ(decoded->inner.version(), 4);
}

}  // namespace
}  // namespace tango::net
