#include "net/ip_address.hpp"

#include <gtest/gtest.h>

namespace tango::net {
namespace {

TEST(Ipv4Address, ParsesDottedQuad) {
  auto a = Ipv4Address::parse("192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xC0000201u);
  EXPECT_EQ(a->to_string(), "192.0.2.1");
}

TEST(Ipv4Address, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Address::parse("01.2.3.4").has_value());  // leading zero
  EXPECT_FALSE(Ipv4Address::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse(" 1.2.3.4").has_value());
}

TEST(Ipv4Address, BytesAreNetworkOrder) {
  Ipv4Address a{10, 20, 30, 40};
  auto b = a.bytes();
  EXPECT_EQ(b[0], 10);
  EXPECT_EQ(b[1], 20);
  EXPECT_EQ(b[2], 30);
  EXPECT_EQ(b[3], 40);
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(1, 0, 0, 0), Ipv4Address(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Address(1, 2, 3, 4), *Ipv4Address::parse("1.2.3.4"));
}

TEST(Ipv6Address, ParsesFullForm) {
  auto a = Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  EXPECT_EQ(a->group(7), 0x0001);
}

TEST(Ipv6Address, ParsesCompressed) {
  auto a = Ipv6Address::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  for (std::size_t i = 2; i < 7; ++i) EXPECT_EQ(a->group(i), 0) << i;
  EXPECT_EQ(a->group(7), 1);
}

TEST(Ipv6Address, ParsesAllZeros) {
  auto a = Ipv6Address::parse("::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Ipv6Address{});
  EXPECT_EQ(a->to_string(), "::");
}

TEST(Ipv6Address, ParsesLeadingGap) {
  auto a = Ipv6Address::parse("::ffff:1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(6), 0xffff);
  EXPECT_EQ(a->group(7), 1);
}

TEST(Ipv6Address, ParsesTrailingGap) {
  auto a = Ipv6Address::parse("fe80::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0xfe80);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_EQ(a->group(i), 0);
}

TEST(Ipv6Address, ParsesEmbeddedIpv4) {
  auto a = Ipv6Address::parse("::ffff:192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(5), 0xffff);
  EXPECT_EQ(a->group(6), 0xc000);
  EXPECT_EQ(a->group(7), 0x0201);
}

TEST(Ipv6Address, RejectsMalformed) {
  EXPECT_FALSE(Ipv6Address::parse("").has_value());
  EXPECT_FALSE(Ipv6Address::parse(":::").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7").has_value());        // 7 groups, no gap
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9").has_value());    // 9 groups
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8::").has_value());    // gap covers nothing
  EXPECT_FALSE(Ipv6Address::parse("12345::").has_value());              // group too long
  EXPECT_FALSE(Ipv6Address::parse("g::1").has_value());                 // bad hex
  EXPECT_FALSE(Ipv6Address::parse("1::2::3").has_value());              // two gaps
  EXPECT_FALSE(Ipv6Address::parse("1:").has_value());
}

TEST(Ipv6Address, Rfc5952Formatting) {
  // Longest zero run compressed; single zero group not compressed.
  EXPECT_EQ(Ipv6Address::parse("2001:db8:0:0:1:0:0:1")->to_string(), "2001:db8::1:0:0:1");
  EXPECT_EQ(Ipv6Address::parse("2001:0:0:1:0:0:0:1")->to_string(), "2001:0:0:1::1");
  EXPECT_EQ(Ipv6Address::parse("2001:db8:0:1:1:1:1:1")->to_string(), "2001:db8:0:1:1:1:1:1");
  EXPECT_EQ(Ipv6Address::parse("::1")->to_string(), "::1");
  EXPECT_EQ(Ipv6Address::parse("ff00::")->to_string(), "ff00::");
}

/// Property: parse(to_string(a)) == a over a corpus of addresses.
class Ipv6RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv6RoundTrip, ParseFormatParse) {
  auto a = Ipv6Address::parse(GetParam());
  ASSERT_TRUE(a.has_value()) << GetParam();
  auto again = Ipv6Address::parse(a->to_string());
  ASSERT_TRUE(again.has_value()) << a->to_string();
  EXPECT_EQ(*a, *again);
}

INSTANTIATE_TEST_SUITE_P(Corpus, Ipv6RoundTrip,
                         ::testing::Values("::", "::1", "1::", "2001:db8::1",
                                           "2620:110:9001::1", "fe80::1:2:3:4",
                                           "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
                                           "1:0:0:2:0:0:0:3", "a:b:c:d:e:f:1:2",
                                           "::ffff:10.0.0.1", "100::"));

TEST(Ipv6Address, BitAccess) {
  auto a = *Ipv6Address::parse("8000::");
  EXPECT_TRUE(a.bit(0));
  for (std::size_t i = 1; i < 128; ++i) EXPECT_FALSE(a.bit(i)) << i;

  auto b = *Ipv6Address::parse("::1");
  EXPECT_TRUE(b.bit(127));
  EXPECT_FALSE(b.bit(126));
}

TEST(Ipv6Address, WithBitSetsAndClears) {
  Ipv6Address zero{};
  auto one = zero.with_bit(127, true);
  EXPECT_EQ(one, *Ipv6Address::parse("::1"));
  EXPECT_EQ(one.with_bit(127, false), zero);
  // with_bit does not mutate the source.
  EXPECT_EQ(zero, Ipv6Address{});
}

TEST(IpAddress, ParsesEitherFamily) {
  auto v4 = IpAddress::parse("10.1.2.3");
  ASSERT_TRUE(v4.has_value());
  EXPECT_TRUE(v4->is_v4());
  EXPECT_EQ(v4->to_string(), "10.1.2.3");

  auto v6 = IpAddress::parse("2001:db8::5");
  ASSERT_TRUE(v6.has_value());
  EXPECT_TRUE(v6->is_v6());
  EXPECT_EQ(v6->to_string(), "2001:db8::5");

  EXPECT_FALSE(IpAddress::parse("not-an-address").has_value());
}

TEST(IpAddress, OrderingIsTotalAcrossFamilies) {
  IpAddress a = *IpAddress::parse("10.0.0.1");
  IpAddress b = *IpAddress::parse("2001:db8::1");
  EXPECT_TRUE((a < b) || (b < a));
  EXPECT_EQ(a, a);
}

}  // namespace
}  // namespace tango::net
