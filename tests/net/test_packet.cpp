#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <random>

#include "net/checksum.hpp"
#include "net/prefix_trie.hpp"

namespace tango::net {
namespace {

const Ipv6Address kHostA = *Ipv6Address::parse("2620:110:900a::10");
const Ipv6Address kHostB = *Ipv6Address::parse("2620:110:901b::10");
const Ipv6Address kTunA = *Ipv6Address::parse("2620:110:9001::1");
const Ipv6Address kTunB = *Ipv6Address::parse("2620:110:9011::1");

std::vector<std::uint8_t> payload_bytes(std::size_t n, std::uint8_t seed = 7) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(seed + i);
  return out;
}

TEST(Headers, Ipv6RoundTrip) {
  Ipv6Header h{.traffic_class = 0xAB,
               .flow_label = 0xFFFFF,
               .payload_length = 1234,
               .next_header = Ipv6Header::kNextHeaderUdp,
               .hop_limit = 17,
               .src = kHostA,
               .dst = kHostB};
  ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), Ipv6Header::kSize);
  ByteReader r{w.view()};
  EXPECT_EQ(Ipv6Header::parse(r), h);
}

TEST(Headers, Ipv6ParseRejectsWrongVersion) {
  std::vector<std::uint8_t> bytes(40, 0);
  bytes[0] = 0x40;  // version 4
  ByteReader r{bytes};
  EXPECT_FALSE(Ipv6Header::parse(r).has_value());
}

TEST(Headers, Ipv6ParseRejectsTruncation) {
  std::vector<std::uint8_t> bytes(40, 0);
  bytes[0] = 0x60;
  for (std::size_t keep : {std::size_t{0}, std::size_t{1}, std::size_t{39}}) {
    ByteReader r{std::span<const std::uint8_t>{bytes.data(), keep}};
    EXPECT_FALSE(Ipv6Header::parse(r).has_value()) << keep;
    EXPECT_EQ(r.remaining(), keep) << "failed parse must not consume";
  }
}

TEST(Headers, UdpParseRejectsTruncationAndTinyLength) {
  UdpHeader h{.src_port = 1, .dst_port = 2, .length = 100, .checksum = 0};
  ByteWriter w;
  h.serialize(w);
  ByteReader r1{w.view().first(7)};
  EXPECT_FALSE(UdpHeader::parse(r1).has_value());

  // A declared length below 8 cannot even cover the UDP header (RFC 768).
  UdpHeader tiny{.src_port = 1, .dst_port = 2, .length = 7, .checksum = 0};
  ByteWriter w2;
  tiny.serialize(w2);
  ByteReader r2{w2.view()};
  EXPECT_FALSE(UdpHeader::parse(r2).has_value());
}

TEST(Headers, UdpRoundTrip) {
  UdpHeader h{.src_port = 49153, .dst_port = 7654, .length = 100, .checksum = 0xBEEF};
  ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), UdpHeader::kSize);
  ByteReader r{w.view()};
  EXPECT_EQ(UdpHeader::parse(r), h);
}

TEST(Headers, TangoRoundTrip) {
  TangoHeader h;
  h.path_id = 3;
  h.tx_time_ns = 0x0123456789ABCDEFull;
  h.sequence = 42;
  ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), TangoHeader::kSize);
  ByteReader r{w.view()};
  auto parsed = TangoHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(Headers, TangoParseRejectsBadMagicAndVersion) {
  TangoHeader h;
  ByteWriter w;
  h.serialize(w);
  auto bytes = std::vector<std::uint8_t>{w.view().begin(), w.view().end()};

  auto corrupt_magic = bytes;
  corrupt_magic[0] = 0x00;
  ByteReader r1{corrupt_magic};
  EXPECT_FALSE(TangoHeader::parse(r1).has_value());

  auto corrupt_version = bytes;
  corrupt_version[2] = 99;
  ByteReader r2{corrupt_version};
  EXPECT_FALSE(TangoHeader::parse(r2).has_value());

  ByteReader r3{std::span<const std::uint8_t>{bytes.data(), 10}};  // truncated
  EXPECT_FALSE(TangoHeader::parse(r3).has_value());
}

TEST(Packet, MakeUdpPacketIsWellFormed) {
  auto payload = payload_bytes(32);
  Packet p = make_udp_packet(kHostA, kHostB, 1111, 2222, payload);
  const auto ip = p.ip();
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->src, kHostA);
  EXPECT_EQ(ip->dst, kHostB);
  EXPECT_EQ(ip->next_header, Ipv6Header::kNextHeaderUdp);
  EXPECT_EQ(ip->payload_length, UdpHeader::kSize + payload.size());
  EXPECT_EQ(p.size(), Ipv6Header::kSize + UdpHeader::kSize + payload.size());
  // Valid UDP checksum over the pseudo-header.
  EXPECT_TRUE(udp6_checksum_ok(ip->src, ip->dst, p.payload()));
}

TEST(Packet, DecrementHopLimit) {
  Packet p = make_udp_packet(kHostA, kHostB, 1, 2, payload_bytes(4), /*hop_limit=*/2);
  EXPECT_TRUE(p.decrement_hop_limit());
  ASSERT_TRUE(p.ip().has_value());
  EXPECT_EQ(p.ip()->hop_limit, 1);
  EXPECT_TRUE(p.decrement_hop_limit());
  EXPECT_FALSE(p.decrement_hop_limit());  // at zero: drop
}

TEST(Packet, EncapDecapRoundTripPreservesInnerExactly) {
  Packet inner = make_udp_packet(kHostA, kHostB, 5000, 6000, payload_bytes(100));
  TangoHeader th;
  th.path_id = 2;
  th.tx_time_ns = 123456789;
  th.sequence = 7;

  Packet wan = encapsulate_tango(inner, kTunA, kTunB, 49154, th);
  const auto outer = wan.ip();
  ASSERT_TRUE(outer.has_value());
  EXPECT_EQ(outer->src, kTunA);
  EXPECT_EQ(outer->dst, kTunB);
  EXPECT_EQ(outer->next_header, Ipv6Header::kNextHeaderUdp);

  auto decoded = decapsulate_tango(wan);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tango, th);
  EXPECT_EQ(decoded->udp.src_port, 49154);
  EXPECT_EQ(decoded->udp.dst_port, TangoHeader::kUdpPort);
  EXPECT_EQ(decoded->inner, inner);  // byte-identical
}

TEST(Packet, DecapsulateRejectsNonTangoTraffic) {
  // Plain UDP to a non-Tango port.
  Packet plain = make_udp_packet(kHostA, kHostB, 1234, 80, payload_bytes(8));
  EXPECT_FALSE(decapsulate_tango(plain).has_value());

  // UDP to the Tango port but garbage payload (bad magic).
  Packet fake = make_udp_packet(kHostA, kHostB, 1234, TangoHeader::kUdpPort,
                                payload_bytes(TangoHeader::kSize + 4));
  EXPECT_FALSE(decapsulate_tango(fake).has_value());
}

TEST(Packet, DecapsulateRejectsCorruptedChecksum) {
  Packet inner = make_udp_packet(kHostA, kHostB, 5000, 6000, payload_bytes(10));
  TangoHeader th;
  Packet wan = encapsulate_tango(inner, kTunA, kTunB, 49152, th);

  auto bytes = std::vector<std::uint8_t>{wan.bytes().begin(), wan.bytes().end()};
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() - 1] ^= 0xFF;  // corrupt the inner payload; outer UDP checksum breaks
  EXPECT_FALSE(decapsulate_tango(Packet{bytes}).has_value());
}

TEST(Packet, DecapsulateRejectsTruncation) {
  Packet inner = make_udp_packet(kHostA, kHostB, 5000, 6000, payload_bytes(10));
  Packet wan = encapsulate_tango(inner, kTunA, kTunB, 49152, TangoHeader{});
  for (std::size_t keep : {std::size_t{0}, std::size_t{10}, Ipv6Header::kSize,
                           Ipv6Header::kSize + 4}) {
    std::vector<std::uint8_t> cut{wan.bytes().begin(), wan.bytes().begin() + keep};
    EXPECT_FALSE(decapsulate_tango(Packet{std::move(cut)}).has_value()) << keep;
  }
}

TEST(Packet, DescribeRendersStack) {
  Packet inner = make_udp_packet(kHostA, kHostB, 5000, 6000, payload_bytes(4));
  TangoHeader th;
  th.path_id = 9;
  th.sequence = 11;
  Packet wan = encapsulate_tango(inner, kTunA, kTunB, 49152, th);
  const std::string text = describe(wan);
  EXPECT_NE(text.find("Tango"), std::string::npos);
  EXPECT_NE(text.find("path=9"), std::string::npos);
  EXPECT_NE(text.find("seq=11"), std::string::npos);
  EXPECT_EQ(describe(Packet{}), "<malformed packet, 0 bytes>");
}

/// Property: encapsulation round-trips across random payload sizes and
/// header field values.
class EncapRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EncapRoundTrip, RandomizedRoundTrip) {
  std::mt19937_64 rng{GetParam()};
  for (int i = 0; i < 50; ++i) {
    const auto n = static_cast<std::size_t>(rng() % 600);
    std::vector<std::uint8_t> payload(n);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());

    Packet inner = make_udp_packet(kHostA, kHostB, static_cast<std::uint16_t>(rng()),
                                   static_cast<std::uint16_t>(rng()), payload);
    TangoHeader th;
    th.path_id = static_cast<std::uint16_t>(rng());
    th.tx_time_ns = rng();
    th.sequence = rng();

    Packet wan = encapsulate_tango(inner, kTunA, kTunB, static_cast<std::uint16_t>(rng()), th);
    auto decoded = decapsulate_tango(wan);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->inner, inner);
    EXPECT_EQ(decoded->tango, th);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncapRoundTrip, ::testing::Values(11u, 22u, 33u, 44u));

// --- Headroom fast path ------------------------------------------------------

TEST(PacketHeadroom, BuildersReserveDefaultHeadroom) {
  const Packet p = make_udp_packet(kHostA, kHostB, 1, 2, payload_bytes(10));
  EXPECT_EQ(p.headroom(), Packet::kDefaultHeadroom);
  const Packet p4 = make_udp4_packet(*Ipv4Address::parse("10.0.0.1"),
                                     *Ipv4Address::parse("10.0.0.2"), 1, 2, payload_bytes(10));
  EXPECT_EQ(p4.headroom(), Packet::kDefaultHeadroom);
}

TEST(PacketHeadroom, PrependWithinHeadroomDoesNotMoveData) {
  Packet p = make_udp_packet(kHostA, kHostB, 1, 2, payload_bytes(32));
  const std::uint8_t* before = p.bytes().data();
  const auto snapshot = std::vector<std::uint8_t>{p.bytes().begin(), p.bytes().end()};
  auto room = p.prepend(Packet::kDefaultHeadroom);
  std::fill(room.begin(), room.end(), std::uint8_t{0xEE});
  EXPECT_EQ(p.headroom(), 0u);
  EXPECT_EQ(p.bytes().data() + Packet::kDefaultHeadroom, before)
      << "prepend within headroom must not reallocate or shift the packet";
  p.trim_front(Packet::kDefaultHeadroom);
  EXPECT_EQ(std::vector<std::uint8_t>(p.bytes().begin(), p.bytes().end()), snapshot);
  EXPECT_EQ(p.headroom(), Packet::kDefaultHeadroom);
}

TEST(PacketHeadroom, PrependBeyondHeadroomGrowsAndPreservesBytes) {
  Packet p{payload_bytes(40)};  // adopted raw bytes: zero headroom
  ASSERT_EQ(p.headroom(), 0u);
  auto room = p.prepend(8);
  std::fill(room.begin(), room.end(), std::uint8_t{0xAA});
  EXPECT_EQ(p.size(), 48u);
  EXPECT_EQ(p.headroom(), Packet::kDefaultHeadroom);
  EXPECT_EQ(p.bytes()[0], 0xAA);
  EXPECT_EQ(p.bytes()[8], payload_bytes(40)[0]);
}

TEST(PacketHeadroom, EqualityIgnoresHeadroom) {
  const Packet with_headroom = make_udp_packet(kHostA, kHostB, 1, 2, payload_bytes(16));
  const Packet bare{std::vector<std::uint8_t>{with_headroom.bytes().begin(),
                                              with_headroom.bytes().end()}};
  EXPECT_EQ(with_headroom, bare);
  EXPECT_NE(with_headroom.headroom(), bare.headroom());
}

TEST(PacketFlowKey, CachedAcrossHopLimitDecrements) {
  Packet p = make_udp_packet(kHostA, kHostB, 1111, 2222, payload_bytes(8));
  const Packet::FlowKey* key = p.flow_key();
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(key->dst, kHostB);
  const std::uint64_t hash = key->hash;
  ASSERT_TRUE(p.decrement_hop_limit());
  const Packet::FlowKey* again = p.flow_key();
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again, key) << "hop-limit decrement must not invalidate the cache";
  EXPECT_EQ(again->hash, hash);
}

TEST(PacketFlowKey, V4DestinationIsV4Mapped) {
  const auto src4 = *Ipv4Address::parse("192.0.2.1");
  const auto dst4 = *Ipv4Address::parse("198.51.100.7");
  Packet p = make_udp4_packet(src4, dst4, 1111, 2222, payload_bytes(8));
  const Packet::FlowKey* key = p.flow_key();
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(key->dst, v4_mapped(dst4));
  ASSERT_TRUE(p.decrement_ttl_v4());
  EXPECT_EQ(p.flow_key(), key) << "TTL decrement must not invalidate the cache";
}

TEST(PacketFlowKey, InvalidatedByPrependAndTrim) {
  Packet p = make_udp_packet(kHostA, kHostB, 1111, 2222, payload_bytes(8));
  ASSERT_NE(p.flow_key(), nullptr);
  TangoHeader th;
  encapsulate_tango_inplace(p, kTunA, kTunB, 49152, th);
  const Packet::FlowKey* outer_key = p.flow_key();
  ASSERT_NE(outer_key, nullptr);
  EXPECT_EQ(outer_key->dst, kTunB) << "after encapsulation the flow key is the outer tunnel's";
  const auto view = decapsulate_tango_view(p);
  ASSERT_TRUE(view.has_value());
  p.trim_front(view->outer_size);
  const Packet::FlowKey* inner_key = p.flow_key();
  ASSERT_NE(inner_key, nullptr);
  EXPECT_EQ(inner_key->dst, kHostB) << "after trim the flow key is the inner packet's again";
}

TEST(PacketFlowKey, MalformedReturnsNullptrOnce) {
  Packet junk{std::vector<std::uint8_t>{0x60, 0x00, 0x01}};  // truncated IPv6
  EXPECT_EQ(junk.flow_key(), nullptr);
  EXPECT_EQ(junk.flow_key(), nullptr) << "malformed verdict is cached too";
  EXPECT_EQ(Packet{}.flow_key(), nullptr);
}

TEST(BufferPool, RecyclesCapacityAndCountsHits) {
  BufferPool pool;
  EXPECT_EQ(pool.pooled(), 0u);
  Packet p = make_udp_packet(pool, kHostA, kHostB, 1, 2, payload_bytes(100));
  EXPECT_EQ(pool.misses(), 1u) << "cold pool: the first buffer is allocated";
  const std::size_t total = Packet::kDefaultHeadroom + p.size();
  pool.release(std::move(p).release_buffer());
  ASSERT_EQ(pool.pooled(), 1u);

  Packet q = make_udp_packet(pool, kHostA, kHostB, 1, 2, payload_bytes(100));
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_GE(q.headroom() + q.size(), total);
  // The recycled build is byte-identical to a fresh one.
  EXPECT_EQ(q, make_udp_packet(kHostA, kHostB, 1, 2, payload_bytes(100)));
}

TEST(BufferPool, IgnoresEmptyBuffers) {
  BufferPool pool;
  pool.release({});
  EXPECT_EQ(pool.pooled(), 0u);
}

}  // namespace
}  // namespace tango::net
