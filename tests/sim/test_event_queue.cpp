#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "net/packet.hpp"

namespace tango::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&order] { order.push_back(3); });
  q.schedule_at(10, [&order] { order.push_back(1); });
  q.schedule_at(20, [&order] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&fired] { ++fired; });
  q.schedule_at(100, [&fired] { ++fired; });
  q.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 50);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) q.schedule_in(10, step);
  };
  q.schedule_in(10, step);
  q.run_all();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, SchedulingIntoPastThrows) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule_at(10, [] {}));  // "now" is allowed
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&fired] { ++fired; });
  q.clear();
  q.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  Time observed = -1;
  q.schedule_at(100, [&] { q.schedule_in(25, [&] { observed = q.now(); }); });
  q.run_all();
  EXPECT_EQ(observed, 125);
}

// --- InlineFunction (the queue's small-buffer-optimized Action) --------------

TEST(InlineFunction, SmallCaptureStaysInline) {
  int x = 0;
  InlineFunction<120> f{[&x] { x = 42; }};
  EXPECT_TRUE(f.is_inline());
  f();
  EXPECT_EQ(x, 42);
}

TEST(InlineFunction, WanHopSizedCaptureStaysInline) {
  // The capture the event engine actually schedules per hop: a pointer, an
  // id, and a Packet.  This staying inline is the whole point of the type.
  struct Hop {
    void* wan;
    std::uint32_t id;
    net::Packet packet;
  };
  static_assert(sizeof(Hop) <= 120);
  bool fired = false;
  EventQueue::Action a{[h = Hop{}, &fired]() mutable {
    h.id = 1;
    fired = true;
  }};
  EXPECT_TRUE(a.is_inline());
  a();
  EXPECT_TRUE(fired);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint8_t, 256> big{};
  big[0] = 9;
  int out = 0;
  InlineFunction<120> f{[big, &out] { out = big[0]; }};
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(out, 9);
}

TEST(InlineFunction, MoveTransfersTheCallable) {
  auto counter = std::make_shared<int>(0);
  InlineFunction<120> a{[counter] { ++*counter; }};
  InlineFunction<120> b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): testing moved-from state
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  b();
  EXPECT_EQ(*counter, 2);

  InlineFunction<120> c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 3);
}

TEST(InlineFunction, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineFunction<120> f{[t = std::move(token)] { (void)t; }};
    EXPECT_FALSE(watch.expired());
    InlineFunction<120> g{std::move(f)};
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired()) << "capture must be destroyed when the function dies";
}

TEST(InlineFunction, HeapFallbackDestroysCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    std::array<std::uint8_t, 256> pad{};
    InlineFunction<120> f{[t = std::move(token), pad] { (void)t, (void)pad; }};
    EXPECT_FALSE(f.is_inline());
  }
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace tango::sim
