#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace tango::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&order] { order.push_back(3); });
  q.schedule_at(10, [&order] { order.push_back(1); });
  q.schedule_at(20, [&order] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&fired] { ++fired; });
  q.schedule_at(100, [&fired] { ++fired; });
  q.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 50);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) q.schedule_in(10, step);
  };
  q.schedule_in(10, step);
  q.run_all();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, SchedulingIntoPastThrows) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule_at(10, [] {}));  // "now" is allowed
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&fired] { ++fired; });
  q.clear();
  q.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  Time observed = -1;
  q.schedule_at(100, [&] { q.schedule_in(25, [&] { observed = q.now(); }); });
  q.run_all();
  EXPECT_EQ(observed, 125);
}

}  // namespace
}  // namespace tango::sim
