// Single-threaded contract tests of the cross-shard mailbox ring: capacity
// rounding, full/empty boundaries and index wraparound.  (The concurrent
// behavior is exercised by the threaded shard-engine tests and the TSan CI
// job.)
#include "sim/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace tango::sim {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>{1}.capacity(), 1u);
  EXPECT_EQ(SpscRing<int>{2}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{3}.capacity(), 4u);
  EXPECT_EQ(SpscRing<int>{1000}.capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>{1024}.capacity(), 1024u);
}

TEST(SpscRingTest, StartsEmptyAndPopFails) {
  SpscRing<int> ring{4};
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingTest, PushToFullThenPopToEmpty) {
  SpscRing<int> ring{4};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(int{i})) << i;
  }
  EXPECT_EQ(ring.size(), 4u);
  // Full: the fifth push is refused and the item untouched.
  EXPECT_FALSE(ring.try_push(99));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, InterleavedPushPopWrapsAroundManyTimes) {
  SpscRing<int> ring{4};
  int next_push = 0;
  int next_pop = 0;
  // Push 3 / pop 2 per round: the cursors lap the 4-slot buffer hundreds of
  // times, crossing every wraparound boundary.
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 3; ++i) {
      if (ring.try_push(int{next_push})) ++next_push;
    }
    int out = -1;
    for (int i = 0; i < 2; ++i) {
      if (ring.try_pop(out)) {
        EXPECT_EQ(out, next_pop);
        ++next_pop;
      }
    }
  }
  // Drain the tail and check nothing was lost, duplicated or reordered.
  int out = -1;
  while (ring.try_pop(out)) {
    EXPECT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRingTest, MoveOnlyStyleValuesMoveThrough) {
  SpscRing<std::string> ring{2};
  std::string s(128, 'x');  // past SSO: a real buffer moves through the slot
  const char* buf = s.data();
  ASSERT_TRUE(ring.try_push(std::move(s)));
  std::string out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out.data(), buf);
  EXPECT_EQ(out, std::string(128, 'x'));
}

TEST(SpscRingTest, ConcurrentProducerConsumerPreservesFifo) {
  SpscRing<std::uint64_t> ring{64};
  // Modest count: on a single-core runner the two threads interleave via
  // preemption only, so the test runs at scheduler-quantum speed.
  constexpr std::uint64_t kCount = 20000;
  std::thread producer{[&ring] {
    for (std::uint64_t i = 0; i < kCount;) {
      if (ring.try_push(std::uint64_t{i})) ++i;
    }
  }};
  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (expected < kCount) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace tango::sim
