// Conservative-synchronization engine tests: toy shard graphs driving
// ShardEngine directly (ordering, frontiers, barriers, time jumps), then the
// determinism acceptance gate on the sharded WAN — bitwise-identical delivery
// digests at 1, 2, 4 and 8 shards, cooperative and threaded.
#include "sim/shard_engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <deque>
#include <string>
#include <vector>

#include "sim/wan.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::sim {
namespace {

using namespace topo::vultr;

// --- Toy harness: a ring of shards relaying one token --------------------

struct ToyCtx {
  ShardEngine* engine = nullptr;
  std::vector<EventQueue*> queues;
  std::vector<std::vector<Time>> logs;  // per-shard executed times (owner-written)
  Time limit = 0;
  Time hop = 0;
  std::uint32_t shards = 0;
};

void toy_execute(ToyCtx* t, std::uint32_t shard, Time at, std::uint64_t key) {
  t->logs[shard].push_back(at);
  const Time next = at + t->hop;
  if (next <= t->limit) {
    t->engine->post(shard, (shard + 1) % t->shards,
                    ShardEngine::Mail{.at = next, .key = key, .dst = 0, .packet = {}});
  }
}

void toy_drain(void* ctx, std::uint32_t shard, ShardEngine::Mail&& mail) {
  auto* t = static_cast<ToyCtx*>(ctx);
  const Time at = mail.at;
  const std::uint64_t key = mail.key;
  t->queues[shard]->schedule_keyed(at, key, [t, shard, at, key] { toy_execute(t, shard, at, key); });
}

/// Shards in a forward ring: lookahead(i -> i+1) = hop, no other edges.
struct ToyRing {
  explicit ToyRing(std::uint32_t shards, Time hop, Time limit, bool threaded) {
    ctx.shards = shards;
    ctx.hop = hop;
    ctx.limit = limit;
    ctx.logs.resize(shards);
    for (std::uint32_t i = 0; i < shards; ++i) {
      queues.emplace_back(EventQueue::Backend::timing_wheel);
      ctx.queues.push_back(&queues.back());
    }
    std::vector<std::vector<Time>> lookahead(shards,
                                             std::vector<Time>(shards, ShardEngine::kNoLink));
    for (std::uint32_t i = 0; i < shards; ++i) lookahead[i][(i + 1) % shards] = hop;
    engine = std::make_unique<ShardEngine>(ctx.queues, std::move(lookahead), &toy_drain, &ctx,
                                           threaded, /*mailbox_capacity=*/8);
    ctx.engine = engine.get();
  }

  /// Seeds the token at (shard, at).
  void kick(std::uint32_t shard, Time at) {
    ToyCtx* t = &ctx;
    queues[shard].schedule_at(at, [t, shard, at] { toy_execute(t, shard, at, 1); });
  }

  std::deque<EventQueue> queues;  // stable addresses, no moves
  ToyCtx ctx;
  std::unique_ptr<ShardEngine> engine;
};

std::vector<Time> times(Time first, Time step, Time last) {
  std::vector<Time> v;
  for (Time t = first; t <= last; t += step) v.push_back(t);
  return v;
}

TEST(ShardEngineToyTest, PingPongRunAllExecutesEveryHopInOrder) {
  ToyRing ring{2, /*hop=*/10, /*limit=*/200, /*threaded=*/false};
  ring.kick(0, 0);
  ring.engine->run_all();

  EXPECT_EQ(ring.ctx.logs[0], times(0, 20, 200));
  EXPECT_EQ(ring.ctx.logs[1], times(10, 20, 190));
  EXPECT_EQ(ring.engine->stats(0).mail_posted, 10u);   // 0..180 relay on
  EXPECT_EQ(ring.engine->stats(1).mail_posted, 10u);   // 10..190 relay on
  EXPECT_EQ(ring.engine->stats(0).mail_drained, 10u);  // arrivals 20..200
  EXPECT_EQ(ring.engine->stats(1).mail_drained, 10u);  // arrivals 10..190
  // run_all leaves each clock at the shard's last executed event.
  EXPECT_EQ(ring.queues[0].now(), 200);
  EXPECT_EQ(ring.queues[1].now(), 190);
}

TEST(ShardEngineToyTest, RunUntilStopsAtBoundAndResumes) {
  ToyRing ring{2, 10, 200, false};
  ring.kick(0, 0);
  ring.engine->run_until(55);
  EXPECT_EQ(ring.ctx.logs[0], times(0, 20, 40));
  EXPECT_EQ(ring.ctx.logs[1], times(10, 20, 50));
  // Bounded runs park every clock exactly at the bound.
  EXPECT_EQ(ring.queues[0].now(), 55);
  EXPECT_EQ(ring.queues[1].now(), 55);
  EXPECT_GE(ring.engine->frontier(0), 55);
  EXPECT_GE(ring.engine->frontier(1), 55);

  // The in-flight hop at t=60 survives the pause (ring mail drains on the
  // next run) and the relay completes exactly as an unpaused run would.
  ring.engine->run_until(200);
  EXPECT_EQ(ring.ctx.logs[0], times(0, 20, 200));
  EXPECT_EQ(ring.ctx.logs[1], times(10, 20, 190));
  EXPECT_EQ(ring.queues[0].now(), 200);
}

TEST(ShardEngineToyTest, CoordinatorJumpsIdleGapsInsteadOfCreeping) {
  // Two events a millisecond apart with 10 ns lookahead: creeping would take
  // ~10^5 sweeps per gap; the coordinator must cross each gap in one jump.
  ToyRing ring{2, 10, 0, false};  // limit 0: no relaying, pure schedule
  ToyCtx* t = &ring.ctx;
  ring.queues[1].schedule_at(0, [t] { t->logs[1].push_back(0); });
  ring.queues[1].schedule_at(kMillisecond, [t] { t->logs[1].push_back(kMillisecond); });
  ring.engine->run_until(2 * kMillisecond);

  EXPECT_EQ(ring.ctx.logs[1], (std::vector<Time>{0, kMillisecond}));
  EXPECT_EQ(ring.queues[0].now(), 2 * kMillisecond);
  EXPECT_EQ(ring.queues[1].now(), 2 * kMillisecond);
  // One jump to just below t=1ms, one to the bound after the queues drain.
  EXPECT_GE(ring.engine->time_jumps(), 2u);
}

TEST(ShardEngineToyTest, ThreadedMatchesCooperative) {
  constexpr std::uint32_t kShards = 4;
  ToyRing coop{kShards, 7, 500, false};
  ToyRing thr{kShards, 7, 500, true};
  for (std::uint32_t i = 0; i < kShards; ++i) {
    coop.kick(i, i);
    thr.kick(i, i);
  }
  coop.engine->run_all();
  thr.engine->run_all();
  for (std::uint32_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(coop.ctx.logs[i], thr.ctx.logs[i]) << "shard " << i;
    EXPECT_FALSE(coop.ctx.logs[i].empty());
  }
  EXPECT_TRUE(thr.engine->threaded());
}

TEST(ShardEngineToyTest, ControlBarrierFencesOtherShards) {
  // A control event at t=10 on shard 0 mutates state that shard 1's events
  // straddle: the t=5 event must see the old value, the t=15 event the new
  // one, which requires shard 1 to hold at t=9 until the control runs.
  ToyRing ring{2, 10, 0, false};
  ring.queues[0].set_schedule_observer(&ShardEngine::note_control_thunk, ring.engine.get());

  int flag = 0;
  std::vector<std::pair<std::string, int>> seen;
  ToyCtx* t = &ring.ctx;
  ring.queues[1].schedule_at(5, [&flag, &seen] { seen.emplace_back("s1@5", flag); });
  ring.queues[1].schedule_at(15, [&flag, &seen] { seen.emplace_back("s1@15", flag); });
  ring.queues[0].schedule_at(10, [&flag, &seen] {
    flag = 1;
    seen.emplace_back("ctl@10", flag);
  });
  (void)t;
  ring.engine->run_all();

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::string, int>{"s1@5", 0}));
  EXPECT_EQ(seen[1], (std::pair<std::string, int>{"ctl@10", 1}));
  EXPECT_EQ(seen[2], (std::pair<std::string, int>{"s1@15", 1}));
  EXPECT_EQ(ring.engine->stats(0).barriers, 1u);
}

TEST(ShardEngineToyTest, SameTimestampBandsOrderControlInjectArrival) {
  // The determinism contract at equal timestamps: control (plain FIFO keys)
  // < injection band < arrival band, regardless of scheduling order.
  EventQueue q{EventQueue::Backend::timing_wheel};
  std::vector<std::string> order;
  q.schedule_keyed(50, ShardEngine::kArrivalBand | (7ull << ShardEngine::kArrivalLinkShift) | 1,
                   [&order] { order.emplace_back("arrival-l7s1"); });
  q.schedule_keyed(50, ShardEngine::kInjectBand | 0, [&order] { order.emplace_back("inject-0"); });
  q.schedule_at(50, [&order] { order.emplace_back("control"); });
  q.schedule_keyed(50, ShardEngine::kArrivalBand | (3ull << ShardEngine::kArrivalLinkShift) | 9,
                   [&order] { order.emplace_back("arrival-l3s9"); });
  q.schedule_keyed(50, ShardEngine::kInjectBand | 1, [&order] { order.emplace_back("inject-1"); });
  q.schedule_keyed(50, ShardEngine::kArrivalBand | (3ull << ShardEngine::kArrivalLinkShift) | 2,
                   [&order] { order.emplace_back("arrival-l3s2"); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<std::string>{"control", "inject-0", "inject-1", "arrival-l3s2",
                                             "arrival-l3s9", "arrival-l7s1"}));
}

// --- WAN determinism gate -------------------------------------------------

struct SoakAccum {
  Wan* wan = nullptr;
  std::uint64_t digest = 0xcbf29ce484222325ull;
  std::uint64_t count = 0;
};

void record_delivery(void* ctx, net::Packet& p) {
  auto* a = static_cast<SoakAccum*>(ctx);
  const std::uint64_t hash = p.flow_key() != nullptr ? p.flow_key()->hash : 0;
  const std::uint64_t hop_limit = p.ip().has_value() ? p.ip()->hop_limit : 0;
  a->digest ^= static_cast<std::uint64_t>(a->wan->now()) ^ hash ^ (hop_limit << 48);
  a->digest *= 0x100000001B3ull;
  ++a->count;
}

struct SoakResult {
  std::uint64_t digest = 0;
  std::uint64_t count = 0;
  std::uint64_t delivered = 0;
  std::uint64_t link_loss = 0;
  std::uint64_t mail_posted = 0;
};

/// Bidirectional LA<->NY traffic over the sharded Vultr WAN with a mid-run
/// link-down/link-up control pair and a FIB resync — the digest must be a
/// pure function of the scenario, not of the shard layout or thread
/// schedule.
SoakResult sharded_soak(std::uint32_t shards, bool threaded) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  const std::array<bgp::RouterId, 7> interior{kNtt,    kTelia,   kGtt,    kCogent,
                                              kLevel3, kVultrLa, kVultrNy};
  WanOptions opt;
  opt.sharded = true;
  opt.plan = ShardPlan::round_robin(shards, interior);
  opt.threaded = threaded;
  Wan wan{s.topo, Rng{20260808}, opt};

  SoakAccum ny{&wan};
  SoakAccum la{&wan};
  wan.attach_raw(kServerNy, &record_delivery, &ny);
  wan.attach_raw(kServerLa, &record_delivery, &la);

  static const std::vector<std::uint8_t> kPayload{0xde, 0xad, 0xbe, 0xef};
  for (int i = 0; i < 160; ++i) {
    const Time at = (i + 1) * (kMillisecond / 20);  // 50 us apart, 8 ms span
    wan.schedule_on(kServerLa, at, [&wan, &s, i] {
      wan.send_from(kServerLa,
                    net::make_udp_packet(s.plan.la_hosts.host(1), s.plan.ny_hosts.host(1),
                                         static_cast<std::uint16_t>(1000 + i % 11),
                                         static_cast<std::uint16_t>(2000 + i % 7), kPayload));
    });
    wan.schedule_on(kServerNy, at + 13 * kMicrosecond, [&wan, &s, i] {
      wan.send_from(kServerNy,
                    net::make_udp_packet(s.plan.ny_hosts.host(2), s.plan.la_hosts.host(1),
                                         static_cast<std::uint16_t>(3000 + i % 13),
                                         static_cast<std::uint16_t>(4000 + i % 5), kPayload));
    });
  }
  // Control events: fail the NTT->NY edge under load, restore it, resync
  // FIBs (a no-op for routing here, but it bumps the flow-cache generation
  // on every shard — the barrier must order that against in-flight lookups).
  wan.events().schedule_at(3 * kMillisecond, [&wan] {
    wan.link(kNtt, kVultrNy).set_down(true);
    wan.link(kVultrNy, kNtt).set_down(true);
  });
  wan.events().schedule_at(5 * kMillisecond, [&wan] { wan.sync_fibs(); });
  wan.events().schedule_at(6 * kMillisecond, [&wan] {
    wan.link(kNtt, kVultrNy).set_down(false);
    wan.link(kVultrNy, kNtt).set_down(false);
  });

  wan.run_all();

  SoakResult r;
  r.digest = ny.digest * 0x9E3779B97F4A7C15ull ^ la.digest;
  r.count = ny.count + la.count;
  r.delivered = wan.delivered();
  r.link_loss = wan.dropped(DropReason::link_loss);
  for (std::uint32_t i = 0; i < wan.shard_count(); ++i) {
    r.mail_posted += wan.shard_stats(i).mail_posted;
  }
  return r;
}

TEST(ShardedWanDeterminismTest, DigestIdenticalAcrossShardCounts) {
  const SoakResult base = sharded_soak(1, false);
  ASSERT_GT(base.count, 100u);  // the scenario actually delivers traffic
  EXPECT_GT(base.link_loss, 0u);  // the link-down window actually bites
  EXPECT_EQ(base.mail_posted, 0u);  // single shard: no cross-shard mail

  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const SoakResult r = sharded_soak(shards, false);
    EXPECT_EQ(r.digest, base.digest) << shards << " shards (cooperative)";
    EXPECT_EQ(r.count, base.count) << shards << " shards (cooperative)";
    EXPECT_EQ(r.delivered, base.delivered) << shards << " shards (cooperative)";
    EXPECT_EQ(r.link_loss, base.link_loss) << shards << " shards (cooperative)";
    if (shards > 1) {
      EXPECT_GT(r.mail_posted, 0u) << "traffic never crossed shards at " << shards;
    }
  }
}

TEST(ShardedWanDeterminismTest, DigestIdenticalUnderThreads) {
  const SoakResult base = sharded_soak(1, false);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const SoakResult r = sharded_soak(shards, true);
    EXPECT_EQ(r.digest, base.digest) << shards << " shards (threaded)";
    EXPECT_EQ(r.count, base.count) << shards << " shards (threaded)";
    EXPECT_EQ(r.delivered, base.delivered) << shards << " shards (threaded)";
  }
}

TEST(ShardedWanDeterminismTest, ShardOfReflectsThePlan) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  const std::array<bgp::RouterId, 7> interior{kNtt,    kTelia,   kGtt,    kCogent,
                                              kLevel3, kVultrLa, kVultrNy};
  WanOptions opt;
  opt.sharded = true;
  opt.plan = ShardPlan::round_robin(4, interior);
  Wan wan{s.topo, Rng{1}, opt};
  EXPECT_TRUE(wan.sharded());
  EXPECT_EQ(wan.shard_count(), 4u);
  EXPECT_EQ(wan.shard_of(kServerLa), 0u);  // edges stay on the control shard
  EXPECT_EQ(wan.shard_of(kServerNy), 0u);
  EXPECT_EQ(wan.shard_of(kNtt), 1u);
  EXPECT_EQ(wan.shard_of(kTelia), 2u);
  EXPECT_EQ(wan.shard_of(kGtt), 3u);
  EXPECT_EQ(wan.shard_of(kCogent), 1u);  // round-robin wraps over shards 1..3
}

}  // namespace
}  // namespace tango::sim
