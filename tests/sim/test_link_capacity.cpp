// The deterministic virtual-queue capacity model: backlog growth at the
// service rate, congestion drops past the queue cap, byte-identical behaviour
// while disabled, and clean reset via set_capacity(0, ...).
#include "sim/link.hpp"

#include <gtest/gtest.h>

namespace tango::sim {
namespace {

topo::LinkProfile lossless_profile() {
  return topo::LinkProfile{.base_delay_ms = 10.0, .loss_rate = 0.0};
}

TEST(LinkCapacity, DisabledByDefaultAndByteIdenticalWhenReset) {
  Link plain{lossless_profile(), Rng{3}};
  Link reset{lossless_profile(), Rng{3}};
  reset.set_capacity(100.0, 50.0);
  reset.set_capacity(0.0, 0.0);  // back off: queue state must fully clear

  for (int i = 0; i < 200; ++i) {
    const Time now = i * kMillisecond;
    const Transmission a = plain.transmit(now, 42);
    const Transmission b = reset.transmit(now, 42);
    EXPECT_EQ(a.dropped, b.dropped) << "packet " << i;
    EXPECT_EQ(a.delay, b.delay) << "packet " << i;
  }
  EXPECT_EQ(plain.congestion_drops(), 0u);
  EXPECT_EQ(reset.congestion_drops(), 0u);
}

TEST(LinkCapacity, BacklogGrowsByOneServiceTimePerPacket) {
  Link link{lossless_profile(), Rng{4}};
  // 1000 pkt/s: 1 ms service time; generous queue so nothing drops here.
  link.set_capacity(1000.0, 1000.0);

  // A burst offered at the same instant serializes: packet i waits i ms.
  const Time base = from_ms(10.0);
  for (int i = 0; i < 10; ++i) {
    const Transmission t = link.transmit(/*now=*/kSecond, 42);
    ASSERT_FALSE(t.dropped);
    EXPECT_EQ(t.delay, base + i * kMillisecond) << "packet " << i;
  }

  // After the backlog drains the next packet rides the empty queue again.
  const Transmission later = link.transmit(kSecond + 10 * kMillisecond, 42);
  ASSERT_FALSE(later.dropped);
  EXPECT_EQ(later.delay, base);
}

TEST(LinkCapacity, PacketsPastTheQueueCapAreCongestionDrops) {
  Link link{lossless_profile(), Rng{5}};
  link.set_capacity(1000.0, /*max_queue_ms=*/5.0);

  // 5 ms of queue at 1 ms/packet: the backlog check admits packets 0..5
  // (waits 0..5 ms, at the cap inclusive) and congestion-drops the rest.
  int admitted = 0;
  for (int i = 0; i < 20; ++i) {
    if (!link.transmit(kSecond, 42).dropped) ++admitted;
  }
  EXPECT_EQ(admitted, 6);
  EXPECT_EQ(link.congestion_drops(), 14u);
  EXPECT_EQ(link.drops(), 14u) << "congestion drops count as drops";

  // Offered at a sustainable pace the same link delivers everything.
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(link.transmit(2 * kSecond + i * 2 * kMillisecond, 42).dropped);
  }
  EXPECT_EQ(link.congestion_drops(), 14u);
}

TEST(LinkCapacity, QueueingOnlyAddsDelayNeverDipsBelowFloor) {
  // The sharded engine's lookahead leans on min_delay(); the capacity model
  // must only ever add to the propagation sample.
  Link link{lossless_profile(), Rng{6}};
  link.set_capacity(500.0, 100.0);
  const Time floor = link.min_delay();
  for (int i = 0; i < 50; ++i) {
    const Transmission t = link.transmit(kSecond, 42);
    if (!t.dropped) {
      EXPECT_GE(t.delay, floor);
    }
  }
}

TEST(LinkCapacity, HardDownAndLossDrawPrecedeTheQueue) {
  // A down link drops before touching the queue: no backlog accumulates.
  Link link{lossless_profile(), Rng{7}};
  link.set_capacity(1000.0, 2.0);
  link.set_down(true);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(link.transmit(kSecond, 42).dropped);
  EXPECT_EQ(link.congestion_drops(), 0u);

  link.set_down(false);
  const Transmission t = link.transmit(kSecond, 42);
  ASSERT_FALSE(t.dropped);
  EXPECT_EQ(t.delay, from_ms(10.0)) << "queue stayed empty while down";
}

}  // namespace
}  // namespace tango::sim
