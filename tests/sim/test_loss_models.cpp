#include "sim/loss_model.hpp"

#include <gtest/gtest.h>

namespace tango::sim {
namespace {

TEST(BernoulliLoss, ZeroNeverDrops) {
  Rng rng{1};
  BernoulliLoss m{0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(m.drop(rng));
}

TEST(BernoulliLoss, OneAlwaysDrops) {
  Rng rng{2};
  BernoulliLoss m{1.0};
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(m.drop(rng));
}

TEST(BernoulliLoss, RateMatches) {
  Rng rng{3};
  BernoulliLoss m{0.05};
  int drops = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) drops += m.drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.05, 0.005);
}

TEST(GilbertElliottLoss, BurstyLossClusters) {
  // Good state nearly lossless, bad state heavy: conditional loss
  // probability after a loss must far exceed the marginal rate.
  Rng rng{4};
  GilbertElliottLoss m{/*p_good_to_bad=*/0.002, /*p_bad_to_good=*/0.1,
                       /*loss_good=*/0.0001, /*loss_bad=*/0.5};
  const int n = 200000;
  std::vector<bool> dropped(n);
  int total = 0;
  for (int i = 0; i < n; ++i) {
    dropped[static_cast<std::size_t>(i)] = m.drop(rng);
    total += dropped[static_cast<std::size_t>(i)] ? 1 : 0;
  }
  int after_loss = 0;
  int after_loss_losses = 0;
  for (int i = 1; i < n; ++i) {
    if (dropped[static_cast<std::size_t>(i - 1)]) {
      ++after_loss;
      after_loss_losses += dropped[static_cast<std::size_t>(i)] ? 1 : 0;
    }
  }
  const double marginal = static_cast<double>(total) / n;
  const double conditional = static_cast<double>(after_loss_losses) / after_loss;
  EXPECT_GT(conditional, 5.0 * marginal)
      << "marginal=" << marginal << " conditional=" << conditional;
}

TEST(GilbertElliottLoss, StateTransitions) {
  Rng rng{5};
  GilbertElliottLoss m{1.0, 1.0, 0.0, 0.0};  // flips state every packet
  EXPECT_FALSE(m.in_bad_state());
  (void)m.drop(rng);
  EXPECT_TRUE(m.in_bad_state());
  (void)m.drop(rng);
  EXPECT_FALSE(m.in_bad_state());
}

}  // namespace
}  // namespace tango::sim
