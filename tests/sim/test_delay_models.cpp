#include "sim/delay_model.hpp"

#include <gtest/gtest.h>

namespace tango::sim {
namespace {

TEST(ConstantDelay, AlwaysSame) {
  Rng rng{1};
  ConstantDelay m{27.5};
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(m.sample_ms(rng, i), 27.5);
  EXPECT_DOUBLE_EQ(m.floor_ms(), 27.5);
}

TEST(GaussianJitterDelay, NeverBelowFloorAndMeanClose) {
  Rng rng{2};
  GaussianJitterDelay m{36.0, 0.5, 35.0};
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = m.sample_ms(rng, i);
    EXPECT_GE(v, 35.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 36.0, 0.1);
}

TEST(GaussianJitterDelay, TightSigmaIsNearlyConstant) {
  // GTT's personality: sigma 0.01 ms (§5).
  Rng rng{3};
  GaussianJitterDelay m{27.5, 0.01, 27.5};
  double min = 1e9, max = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = m.sample_ms(rng, i);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_LT(max - min, 0.2);
}

TEST(GammaJitterDelay, AlwaysAboveBaseWithPositiveSkew) {
  Rng rng{4};
  GammaJitterDelay m{31.0, 2.0, 0.15};
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = m.sample_ms(rng, i);
    EXPECT_GE(v, 31.0);
    sum += v;
  }
  // Gamma(2, 0.15) has mean 0.3.
  EXPECT_NEAR(sum / 20000.0, 31.3, 0.05);
}

TEST(DelayModifier, ActiveWindowIsHalfOpen) {
  DelayModifier m{.start = 100, .end = 200};
  EXPECT_FALSE(m.active(99));
  EXPECT_TRUE(m.active(100));
  EXPECT_TRUE(m.active(199));
  EXPECT_FALSE(m.active(200));
}

TEST(DelayModifier, ShiftAppliesInsideWindowOnly) {
  Rng rng{5};
  CompositeDelayModel model{std::make_unique<ConstantDelay>(27.5)};
  model.add_modifier(DelayModifier{.start = from_ms(100), .end = from_ms(200), .shift_ms = 5.0});

  EXPECT_DOUBLE_EQ(model.sample_ms(rng, from_ms(50)), 27.5);
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, from_ms(150)), 32.5);
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, from_ms(250)), 27.5);
}

TEST(DelayModifier, SpikesBoundedAndProbable) {
  Rng rng{6};
  DelayModifier m{.start = 0, .end = kHour, .spike_prob = 0.3, .spike_min_ms = 20.0,
                  .spike_max_ms = 50.0};
  int spikes = 0;
  for (int i = 0; i < 20000; ++i) {
    const double extra = m.sample_extra_ms(rng, kSecond);
    EXPECT_GE(extra, 0.0);
    EXPECT_LE(extra, 50.0);
    if (extra > 0.0) {
      EXPECT_GE(extra, 20.0);
      ++spikes;
    }
  }
  EXPECT_NEAR(static_cast<double>(spikes) / 20000.0, 0.3, 0.02);
}

TEST(DelayModifier, TransitionNoiseOnlyNearEdges) {
  Rng rng{7};
  DelayModifier m{.start = 0, .end = kMinute, .shift_ms = 5.0, .transition = kSecond,
                  .transition_sigma_ms = 4.0};
  // Middle of the window: pure shift.
  EXPECT_DOUBLE_EQ(m.sample_extra_ms(rng, 30 * kSecond), 5.0);
  // Near the start: shift + noise (strictly more, almost surely over many draws).
  double noisy = 0.0;
  for (int i = 0; i < 100; ++i) noisy += m.sample_extra_ms(rng, kSecond / 2);
  EXPECT_GT(noisy / 100.0, 5.5);
}

TEST(CompositeDelayModel, ModifiersStackAndPrune) {
  Rng rng{8};
  CompositeDelayModel model{std::make_unique<ConstantDelay>(10.0)};
  model.add_modifier(DelayModifier{.start = 0, .end = 100, .shift_ms = 1.0});
  model.add_modifier(DelayModifier{.start = 0, .end = 200, .shift_ms = 2.0});
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 50), 13.0);
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 150), 12.0);
  EXPECT_EQ(model.modifier_count(), 2u);
  model.prune(150);
  EXPECT_EQ(model.modifier_count(), 1u);
  model.prune(200);
  EXPECT_EQ(model.modifier_count(), 0u);
}

TEST(CompositeDelayModel, ModifierBoundariesAreHalfOpen) {
  Rng rng{10};
  CompositeDelayModel model{std::make_unique<ConstantDelay>(10.0)};
  model.add_modifier(DelayModifier{.start = 100, .end = 200, .shift_ms = 5.0});
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 99), 10.0);
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 100), 15.0) << "start is inclusive";
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 199), 15.0);
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 200), 10.0) << "end is exclusive";
}

TEST(CompositeDelayModel, BackToBackWindowsNeverDoubleCountTheSeam) {
  // A modifier ending exactly where the next starts: every instant sees
  // exactly one of them — no gap, no overlap at the seam.
  Rng rng{11};
  CompositeDelayModel model{std::make_unique<ConstantDelay>(10.0)};
  model.add_modifier(DelayModifier{.start = 0, .end = 100, .shift_ms = 1.0});
  model.add_modifier(DelayModifier{.start = 100, .end = 200, .shift_ms = 2.0});
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 99), 11.0);
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 100), 12.0);
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 150), 12.0);
}

TEST(CompositeDelayModel, PruneKeepsActiveAndFutureModifiers) {
  Rng rng{12};
  CompositeDelayModel model{std::make_unique<ConstantDelay>(10.0)};
  model.add_modifier(DelayModifier{.start = 0, .end = 100, .shift_ms = 1.0});    // past
  model.add_modifier(DelayModifier{.start = 0, .end = 300, .shift_ms = 2.0});    // active
  model.add_modifier(DelayModifier{.start = 500, .end = 600, .shift_ms = 4.0});  // future
  model.prune(200);
  EXPECT_EQ(model.modifier_count(), 2u) << "only the expired window goes";
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 250), 12.0) << "the active window keeps applying";
  EXPECT_DOUBLE_EQ(model.sample_ms(rng, 550), 14.0) << "the future window still arms";
  model.prune(600);
  EXPECT_EQ(model.modifier_count(), 0u) << "an exactly-expired window is pruned";
}

TEST(MakeDelayModel, BuildsFromProfiles) {
  Rng rng{9};
  topo::LinkProfile constant{.base_delay_ms = 3.0};
  EXPECT_DOUBLE_EQ(make_delay_model(constant)->sample_ms(rng, 0), 3.0);

  topo::LinkProfile gauss{.base_delay_ms = 10.0, .floor_ms = 9.5,
                          .jitter = topo::JitterKind::gaussian, .jitter_sigma_ms = 0.2};
  auto g = make_delay_model(gauss);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(g->sample_ms(rng, i), 9.5);

  topo::LinkProfile gamma{.base_delay_ms = 10.0, .jitter = topo::JitterKind::gamma,
                          .gamma_shape = 2.0, .gamma_scale_ms = 0.1};
  auto gm = make_delay_model(gamma);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(gm->sample_ms(rng, i), 10.0);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng a{42};
  Rng b = a.fork();
  // Streams differ (overwhelmingly likely).
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform() != b.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
  // Same seed -> same stream (determinism).
  Rng c{42};
  Rng d{42};
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(c.uniform(), d.uniform());
}

}  // namespace
}  // namespace tango::sim
