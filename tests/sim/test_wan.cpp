// Packet-level tests of the WAN fabric on the Vultr scenario.
#include "sim/wan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "topo/vultr_scenario.hpp"

namespace tango::sim {
namespace {

using namespace topo::vultr;

net::Packet host_packet(const topo::VultrScenario& s, std::uint16_t sport = 1000,
                        std::uint16_t dport = 2000, std::uint8_t hop_limit = 64) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  return net::make_udp_packet(s.plan.la_hosts.host(1), s.plan.ny_hosts.host(1), sport, dport,
                              payload, hop_limit);
}

class WanTest : public ::testing::Test {
 protected:
  WanTest() : s_{topo::make_vultr_scenario()}, wan_{s_.topo, Rng{1234}} {}

  topo::VultrScenario s_;
  Wan wan_;
};

TEST_F(WanTest, DeliversAlongBgpDefaultWithExpectedDelay) {
  std::vector<net::Packet> delivered;
  wan_.attach(kServerNy, [&delivered](const net::Packet& p) { delivered.push_back(p); });

  std::vector<std::pair<bgp::RouterId, bgp::RouterId>> hops;
  wan_.set_hop_observer([&hops](bgp::RouterId from, bgp::RouterId to, const net::Packet&) {
    hops.emplace_back(from, to);
  });

  const net::Packet p = host_packet(s_);
  wan_.send_from(kServerLa, p);
  wan_.events().run_all();

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(wan_.delivered(), 1u);
  // LA -> Vultr-LA -> NTT -> Vultr-NY -> Server-NY (the BGP default).
  EXPECT_EQ(hops, (std::vector<std::pair<bgp::RouterId, bgp::RouterId>>{
                      {kServerLa, kVultrLa}, {kVultrLa, kNtt}, {kNtt, kVultrNy},
                      {kVultrNy, kServerNy}}));
  // One-way delay ~ 0.2 + 0.5 + 36.2 + 0.2 = 37.1 ms via NTT toward NY.
  EXPECT_NEAR(to_ms(wan_.now()), 37.1, 1.5);
  // Hop limit decremented once per forwarding hop (not at delivery).
  ASSERT_TRUE(delivered.front().ip().has_value());
  EXPECT_EQ(delivered.front().ip()->hop_limit, 64 - 4);
}

TEST_F(WanTest, UnroutableDestinationCountsAsNoRoute) {
  const std::vector<std::uint8_t> payload{1};
  net::Packet p = net::make_udp_packet(s_.plan.la_hosts.host(1),
                                       *net::Ipv6Address::parse("9999::1"), 1, 2, payload);
  wan_.send_from(kServerLa, p);
  wan_.events().run_all();
  EXPECT_EQ(wan_.delivered(), 0u);
  EXPECT_EQ(wan_.dropped(DropReason::no_route), 1u);
}

TEST_F(WanTest, HopLimitExpiryDrops) {
  const net::Packet p = host_packet(s_, 1000, 2000, /*hop_limit=*/2);
  wan_.send_from(kServerLa, p);
  wan_.events().run_all();
  EXPECT_EQ(wan_.delivered(), 0u);
  EXPECT_EQ(wan_.dropped(DropReason::hop_limit), 1u);
}

TEST_F(WanTest, NoHandlerDropIsCounted) {
  // kServerNy has no handler attached in this test.
  wan_.send_from(kServerLa, host_packet(s_));
  wan_.events().run_all();
  EXPECT_EQ(wan_.dropped(DropReason::no_handler), 1u);
}

TEST_F(WanTest, MalformedPacketDropped) {
  wan_.send_from(kServerLa, net::Packet{std::vector<std::uint8_t>{1, 2, 3}});
  wan_.events().run_all();
  EXPECT_EQ(wan_.dropped(DropReason::malformed), 1u);
}

TEST_F(WanTest, FibSyncTracksControlPlaneChanges) {
  std::uint64_t delivered = 0;
  wan_.attach(kServerNy, [&delivered](const net::Packet&) { ++delivered; });

  // Suppress NTT for the NY host prefix: traffic must shift to Telia.
  s_.topo.bgp().originate(kServerNy, net::Prefix{s_.plan.ny_hosts},
                          bgp::CommunitySet{bgp::action::do_not_announce_to(kAsnNtt)});
  wan_.sync_fibs();

  std::vector<bgp::RouterId> visited;
  wan_.set_hop_observer([&visited](bgp::RouterId from, bgp::RouterId, const net::Packet&) {
    visited.push_back(from);
  });
  wan_.send_from(kServerLa, host_packet(s_));
  wan_.events().run_all();

  EXPECT_EQ(delivered, 1u);
  EXPECT_NE(std::find(visited.begin(), visited.end(), kTelia), visited.end())
      << "expected the Telia path after suppression";
}

TEST_F(WanTest, LinkLossDrops) {
  // Make the LA uplink fully lossy.
  s_.topo.set_profile(kServerLa, kVultrLa, topo::LinkProfile{.base_delay_ms = 0.2,
                                                             .loss_rate = 1.0});
  Wan lossy{s_.topo, Rng{7}};
  lossy.send_from(kServerLa, host_packet(s_));
  lossy.events().run_all();
  EXPECT_EQ(lossy.dropped(DropReason::link_loss), 1u);
}

TEST_F(WanTest, EcmpLanesSplitByFlowButPinnedWithinFlow) {
  Link& backbone = wan_.link(kNtt, kVultrNy);
  backbone.set_ecmp(/*lanes=*/4, /*spread_ms=*/2.0);

  std::map<std::uint32_t, int> lane_hits;
  // Distinct source ports = distinct flows: should spread across lanes.
  for (std::uint16_t sport = 1000; sport < 1064; ++sport) {
    const Transmission tx = backbone.transmit(0, sport * 2654435761u);
    ++lane_hits[tx.lane];
  }
  EXPECT_GE(lane_hits.size(), 3u) << "hash should reach most lanes";

  // A fixed flow hash always rides one lane (what Tango's fixed tuple buys).
  const std::uint64_t pinned = 0xABCDEF;
  const std::uint32_t lane0 = backbone.transmit(0, pinned).lane;
  for (int i = 0; i < 32; ++i) EXPECT_EQ(backbone.transmit(0, pinned).lane, lane0);
}

TEST_F(WanTest, DropReasonToStringIsExhaustiveAndDistinct) {
  const std::array<DropReason, 5> reasons{DropReason::no_route, DropReason::link_loss,
                                          DropReason::hop_limit, DropReason::no_handler,
                                          DropReason::malformed};
  std::set<std::string> names;
  for (DropReason r : reasons) {
    const std::string name = to_string(r);
    EXPECT_NE(name, "?") << "unhandled DropReason " << static_cast<int>(r);
    names.insert(name);
  }
  EXPECT_EQ(names.size(), reasons.size()) << "drop reason names must be distinct";
}

// Every drop path must return the packet's buffer to the WAN pool so the
// steady-state pipeline keeps recycling even under faults.

TEST_F(WanTest, NoRouteDropRecyclesBuffer) {
  const std::vector<std::uint8_t> payload{1};
  net::Packet p = net::make_udp_packet(s_.plan.la_hosts.host(1),
                                       *net::Ipv6Address::parse("9999::1"), 1, 2, payload);
  ASSERT_EQ(wan_.buffer_pool().pooled(), 0u);
  wan_.send_from(kServerLa, std::move(p));
  wan_.events().run_all();
  EXPECT_EQ(wan_.dropped(DropReason::no_route), 1u);
  EXPECT_EQ(wan_.buffer_pool().pooled(), 1u);
}

TEST_F(WanTest, HopLimitDropRecyclesBuffer) {
  wan_.send_from(kServerLa, host_packet(s_, 1000, 2000, /*hop_limit=*/2));
  wan_.events().run_all();
  EXPECT_EQ(wan_.dropped(DropReason::hop_limit), 1u);
  EXPECT_EQ(wan_.buffer_pool().pooled(), 1u);
}

TEST_F(WanTest, NoHandlerDropRecyclesBuffer) {
  wan_.send_from(kServerLa, host_packet(s_));  // kServerNy: no handler attached
  wan_.events().run_all();
  EXPECT_EQ(wan_.dropped(DropReason::no_handler), 1u);
  EXPECT_EQ(wan_.buffer_pool().pooled(), 1u);
}

TEST_F(WanTest, MalformedDropRecyclesBuffer) {
  wan_.send_from(kServerLa, net::Packet{std::vector<std::uint8_t>{1, 2, 3}});
  wan_.events().run_all();
  EXPECT_EQ(wan_.dropped(DropReason::malformed), 1u);
  EXPECT_EQ(wan_.buffer_pool().pooled(), 1u);
}

TEST_F(WanTest, LinkLossDropRecyclesBuffer) {
  s_.topo.set_profile(kServerLa, kVultrLa, topo::LinkProfile{.base_delay_ms = 0.2,
                                                             .loss_rate = 1.0});
  Wan lossy{s_.topo, Rng{7}};
  lossy.send_from(kServerLa, host_packet(s_));
  lossy.events().run_all();
  EXPECT_EQ(lossy.dropped(DropReason::link_loss), 1u);
  EXPECT_EQ(lossy.buffer_pool().pooled(), 1u);
}

TEST_F(WanTest, FlowCacheHitsOnRepeatedFlow) {
  wan_.attach(kServerNy, [](net::Packet&) {});
  ASSERT_EQ(wan_.fib_lookups(), 0u);
  wan_.send_from(kServerLa, host_packet(s_));
  wan_.events().run_all();
  const std::uint64_t cold_lookups = wan_.fib_lookups();
  EXPECT_EQ(wan_.fib_cache_hits(), 0u) << "first packet of a flow walks the trie";
  // One lookup per router the packet visits, delivery router included.
  ASSERT_EQ(cold_lookups, 5u);

  for (int i = 0; i < 3; ++i) wan_.send_from(kServerLa, host_packet(s_));
  wan_.events().run_all();
  EXPECT_EQ(wan_.fib_lookups(), 4 * cold_lookups);
  EXPECT_EQ(wan_.fib_cache_hits(), 3 * cold_lookups)
      << "every hop of a repeated flow must be served by the flow cache";
  EXPECT_NEAR(wan_.fib_cache_hit_rate(), 0.75, 1e-9);
}

TEST_F(WanTest, FlowCacheInvalidatedBySyncFibs) {
  std::uint64_t delivered = 0;
  wan_.attach(kServerNy, [&delivered](net::Packet&) { ++delivered; });

  // Warm every router's flow cache along the NTT default path.
  wan_.send_from(kServerLa, host_packet(s_));
  wan_.events().run_all();
  ASSERT_EQ(delivered, 1u);

  // Control-plane change: NY suppresses NTT, traffic must shift to Telia.
  // A stale flow-cache entry at Vultr-LA would keep steering to NTT.
  s_.topo.bgp().originate(kServerNy, net::Prefix{s_.plan.ny_hosts},
                          bgp::CommunitySet{bgp::action::do_not_announce_to(kAsnNtt)});
  wan_.sync_fibs();

  std::vector<bgp::RouterId> visited;
  wan_.set_hop_observer([&visited](bgp::RouterId from, bgp::RouterId, const net::Packet&) {
    visited.push_back(from);
  });
  wan_.send_from(kServerLa, host_packet(s_));
  wan_.events().run_all();

  EXPECT_EQ(delivered, 2u);
  EXPECT_NE(std::find(visited.begin(), visited.end(), kTelia), visited.end())
      << "sync_fibs must invalidate cached next hops";
  EXPECT_EQ(std::find(visited.begin(), visited.end(), kNtt), visited.end())
      << "no packet may follow the stale cached NTT route";
}

TEST_F(WanTest, RawHandlerDeliversAndTakesPrecedence) {
  std::uint64_t raw_calls = 0;
  std::uint64_t fn_calls = 0;
  wan_.attach(kServerNy, [&fn_calls](net::Packet&) { ++fn_calls; });
  wan_.attach_raw(
      kServerNy, [](void* ctx, net::Packet&) { ++*static_cast<std::uint64_t*>(ctx); },
      &raw_calls);
  wan_.send_from(kServerLa, host_packet(s_));
  wan_.events().run_all();
  EXPECT_EQ(raw_calls, 1u);
  EXPECT_EQ(fn_calls, 0u);
  EXPECT_EQ(wan_.delivered(), 1u);
}

TEST_F(WanTest, BurstMatchesSequentialSends) {
  // A burst must produce the identical delivery schedule (same order, same
  // per-packet delays, same RNG consumption) as per-packet sends.
  auto run = [this](bool burst) {
    Wan wan{s_.topo, Rng{1234}};
    std::vector<std::pair<Time, std::uint16_t>> arrivals;
    wan.attach(kServerNy, [&arrivals, &wan](net::Packet& p) {
      arrivals.emplace_back(wan.now(), p.flow_key()->hash & 0xFFFF);
    });
    if (burst) {
      std::vector<net::Packet> b;
      for (std::uint16_t i = 0; i < 16; ++i) b.push_back(host_packet(s_, 3000 + i));
      wan.send_burst_from(kServerLa, std::move(b));
    } else {
      for (std::uint16_t i = 0; i < 16; ++i) {
        wan.send_from(kServerLa, host_packet(s_, 3000 + i));
      }
    }
    wan.events().run_all();
    return arrivals;
  };
  const auto sequential = run(false);
  const auto bursted = run(true);
  ASSERT_EQ(sequential.size(), 16u);
  EXPECT_EQ(sequential, bursted);
}

TEST_F(WanTest, EmptyBurstIsANoOp) {
  wan_.send_burst_from(kServerLa, {});
  wan_.events().run_all();
  EXPECT_EQ(wan_.delivered(), 0u);
  EXPECT_EQ(wan_.total_dropped(), 0u);
  EXPECT_THROW(wan_.send_burst_from(999, {}), std::out_of_range);
}

TEST_F(WanTest, SchedulerBackendsProduceIdenticalRuns) {
  // The acceptance check for the timing wheel: a fixed-seed run with jitter,
  // ECMP lanes and loss produces identical delivered/dropped counts and an
  // identical one-way-delay series under both scheduler backends.
  auto run = [this](EventQueue::Backend backend) {
    Wan wan{s_.topo, Rng{77}, backend};
    wan.link(kNtt, kVultrNy).set_ecmp(/*lanes=*/4, /*spread_ms=*/1.0);
    std::vector<Time> delays;
    wan.attach(kServerNy, [&delays, &wan](net::Packet&) { delays.push_back(wan.now()); });
    for (int round = 0; round < 50; ++round) {
      for (std::uint16_t f = 0; f < 8; ++f) {
        wan.send_from(kServerLa, host_packet(s_, 5000 + f));
      }
      wan.events().run_until(wan.now() + 100 * kMillisecond);
    }
    struct Result {
      std::vector<Time> delays;
      std::uint64_t delivered;
      std::array<std::uint64_t, 5> drops;
      bool operator==(const Result&) const = default;
    };
    return Result{std::move(delays), wan.delivered(),
                  {wan.dropped(DropReason::no_route), wan.dropped(DropReason::link_loss),
                   wan.dropped(DropReason::hop_limit), wan.dropped(DropReason::no_handler),
                   wan.dropped(DropReason::malformed)}};
  };
  const auto wheel = run(EventQueue::Backend::timing_wheel);
  const auto heap = run(EventQueue::Backend::binary_heap);
  EXPECT_GT(wheel.delivered, 0u);
  EXPECT_TRUE(wheel == heap)
      << "wheel delivered " << wheel.delivered << " vs heap " << heap.delivered;
}

TEST_F(WanTest, LinkAccessorValidates) {
  EXPECT_NO_THROW((void)wan_.link(kNtt, kVultrLa));
  EXPECT_THROW((void)wan_.link(kNtt, kServerLa), std::out_of_range);
  EXPECT_THROW(wan_.send_from(999, host_packet(s_)), std::out_of_range);
  EXPECT_THROW(wan_.attach(999, [](const net::Packet&) {}), std::out_of_range);
}

}  // namespace
}  // namespace tango::sim
