// Packet-level tests of the WAN fabric on the Vultr scenario.
#include "sim/wan.hpp"

#include <gtest/gtest.h>

#include "topo/vultr_scenario.hpp"

namespace tango::sim {
namespace {

using namespace topo::vultr;

net::Packet host_packet(const topo::VultrScenario& s, std::uint16_t sport = 1000,
                        std::uint16_t dport = 2000, std::uint8_t hop_limit = 64) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  return net::make_udp_packet(s.plan.la_hosts.host(1), s.plan.ny_hosts.host(1), sport, dport,
                              payload, hop_limit);
}

class WanTest : public ::testing::Test {
 protected:
  WanTest() : s_{topo::make_vultr_scenario()}, wan_{s_.topo, Rng{1234}} {}

  topo::VultrScenario s_;
  Wan wan_;
};

TEST_F(WanTest, DeliversAlongBgpDefaultWithExpectedDelay) {
  std::vector<net::Packet> delivered;
  wan_.attach(kServerNy, [&delivered](const net::Packet& p) { delivered.push_back(p); });

  std::vector<std::pair<bgp::RouterId, bgp::RouterId>> hops;
  wan_.set_hop_observer([&hops](bgp::RouterId from, bgp::RouterId to, const net::Packet&) {
    hops.emplace_back(from, to);
  });

  const net::Packet p = host_packet(s_);
  wan_.send_from(kServerLa, p);
  wan_.events().run_all();

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(wan_.delivered(), 1u);
  // LA -> Vultr-LA -> NTT -> Vultr-NY -> Server-NY (the BGP default).
  EXPECT_EQ(hops, (std::vector<std::pair<bgp::RouterId, bgp::RouterId>>{
                      {kServerLa, kVultrLa}, {kVultrLa, kNtt}, {kNtt, kVultrNy},
                      {kVultrNy, kServerNy}}));
  // One-way delay ~ 0.2 + 0.5 + 36.2 + 0.2 = 37.1 ms via NTT toward NY.
  EXPECT_NEAR(to_ms(wan_.now()), 37.1, 1.5);
  // Hop limit decremented once per forwarding hop (not at delivery).
  EXPECT_EQ(delivered.front().ip().hop_limit, 64 - 4);
}

TEST_F(WanTest, UnroutableDestinationCountsAsNoRoute) {
  const std::vector<std::uint8_t> payload{1};
  net::Packet p = net::make_udp_packet(s_.plan.la_hosts.host(1),
                                       *net::Ipv6Address::parse("9999::1"), 1, 2, payload);
  wan_.send_from(kServerLa, p);
  wan_.events().run_all();
  EXPECT_EQ(wan_.delivered(), 0u);
  EXPECT_EQ(wan_.dropped(DropReason::no_route), 1u);
}

TEST_F(WanTest, HopLimitExpiryDrops) {
  const net::Packet p = host_packet(s_, 1000, 2000, /*hop_limit=*/2);
  wan_.send_from(kServerLa, p);
  wan_.events().run_all();
  EXPECT_EQ(wan_.delivered(), 0u);
  EXPECT_EQ(wan_.dropped(DropReason::hop_limit), 1u);
}

TEST_F(WanTest, NoHandlerDropIsCounted) {
  // kServerNy has no handler attached in this test.
  wan_.send_from(kServerLa, host_packet(s_));
  wan_.events().run_all();
  EXPECT_EQ(wan_.dropped(DropReason::no_handler), 1u);
}

TEST_F(WanTest, MalformedPacketDropped) {
  wan_.send_from(kServerLa, net::Packet{std::vector<std::uint8_t>{1, 2, 3}});
  wan_.events().run_all();
  EXPECT_EQ(wan_.dropped(DropReason::malformed), 1u);
}

TEST_F(WanTest, FibSyncTracksControlPlaneChanges) {
  std::uint64_t delivered = 0;
  wan_.attach(kServerNy, [&delivered](const net::Packet&) { ++delivered; });

  // Suppress NTT for the NY host prefix: traffic must shift to Telia.
  s_.topo.bgp().originate(kServerNy, net::Prefix{s_.plan.ny_hosts},
                          bgp::CommunitySet{bgp::action::do_not_announce_to(kAsnNtt)});
  wan_.sync_fibs();

  std::vector<bgp::RouterId> visited;
  wan_.set_hop_observer([&visited](bgp::RouterId from, bgp::RouterId, const net::Packet&) {
    visited.push_back(from);
  });
  wan_.send_from(kServerLa, host_packet(s_));
  wan_.events().run_all();

  EXPECT_EQ(delivered, 1u);
  EXPECT_NE(std::find(visited.begin(), visited.end(), kTelia), visited.end())
      << "expected the Telia path after suppression";
}

TEST_F(WanTest, LinkLossDrops) {
  // Make the LA uplink fully lossy.
  s_.topo.set_profile(kServerLa, kVultrLa, topo::LinkProfile{.base_delay_ms = 0.2,
                                                             .loss_rate = 1.0});
  Wan lossy{s_.topo, Rng{7}};
  lossy.send_from(kServerLa, host_packet(s_));
  lossy.events().run_all();
  EXPECT_EQ(lossy.dropped(DropReason::link_loss), 1u);
}

TEST_F(WanTest, EcmpLanesSplitByFlowButPinnedWithinFlow) {
  Link& backbone = wan_.link(kNtt, kVultrNy);
  backbone.set_ecmp(/*lanes=*/4, /*spread_ms=*/2.0);

  std::map<std::uint32_t, int> lane_hits;
  // Distinct source ports = distinct flows: should spread across lanes.
  for (std::uint16_t sport = 1000; sport < 1064; ++sport) {
    const Transmission tx = backbone.transmit(0, sport * 2654435761u);
    ++lane_hits[tx.lane];
  }
  EXPECT_GE(lane_hits.size(), 3u) << "hash should reach most lanes";

  // A fixed flow hash always rides one lane (what Tango's fixed tuple buys).
  const std::uint64_t pinned = 0xABCDEF;
  const std::uint32_t lane0 = backbone.transmit(0, pinned).lane;
  for (int i = 0; i < 32; ++i) EXPECT_EQ(backbone.transmit(0, pinned).lane, lane0);
}

TEST_F(WanTest, LinkAccessorValidates) {
  EXPECT_NO_THROW((void)wan_.link(kNtt, kVultrLa));
  EXPECT_THROW((void)wan_.link(kNtt, kServerLa), std::out_of_range);
  EXPECT_THROW(wan_.send_from(999, host_packet(s_)), std::out_of_range);
  EXPECT_THROW(wan_.attach(999, [](const net::Packet&) {}), std::out_of_range);
}

}  // namespace
}  // namespace tango::sim
