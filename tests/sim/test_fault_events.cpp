// Fault-injection events: scheduled apply/revert of link-down, blackhole,
// session-reset and burst-loss faults on the Vultr scenario WAN.
#include "sim/events.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "topo/vultr_scenario.hpp"

namespace tango::sim {
namespace {

using namespace topo::vultr;

net::Packet la_to_ny(const topo::VultrScenario& s, std::uint16_t sport = 1000) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  return net::make_udp_packet(s.plan.la_hosts.host(1), s.plan.ny_hosts.host(1), sport, 2000,
                              payload);
}

net::Packet ny_to_la(const topo::VultrScenario& s, std::uint16_t sport = 1000) {
  const std::vector<std::uint8_t> payload{4, 3, 2, 1};
  return net::make_udp_packet(s.plan.ny_hosts.host(1), s.plan.la_hosts.host(1), sport, 2000,
                              payload);
}

class FaultEventTest : public ::testing::Test {
 protected:
  FaultEventTest() : s_{topo::make_vultr_scenario()}, wan_{s_.topo, Rng{99}} {}

  /// Schedules one LA->NY host packet at absolute time `t`.
  void send_at(Time t, std::uint16_t sport) {
    wan_.events().schedule_at(t, [this, sport]() {
      wan_.send_from(kServerLa, la_to_ny(s_, sport));
    });
  }

  topo::VultrScenario s_;
  Wan wan_;
};

TEST_F(FaultEventTest, LinkDownWithoutWithdrawDropsDuringWindowOnly) {
  // Pure data-plane outage: the FIB keeps pointing at the dead link.
  inject(wan_, LinkDownEvent{.link = {kVultrLa, kNtt},
                             .at = kSecond,
                             .duration = kSecond,
                             .withdraw = false});

  std::uint64_t delivered = 0;
  wan_.attach(kServerNy, [&delivered](const net::Packet&) { ++delivered; });
  send_at(kSecond / 2, 1000);       // before the fault
  send_at(kSecond + kSecond / 2, 1001);  // inside the window
  send_at(2 * kSecond + kSecond / 2, 1002);  // after the revert

  wan_.events().run_all();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(wan_.dropped(DropReason::link_loss), 1u);
  EXPECT_FALSE(wan_.link(kVultrLa, kNtt).down()) << "revert must clear the flag";
}

TEST_F(FaultEventTest, LinkDownWithWithdrawReroutesAndHeals) {
  inject(wan_, LinkDownEvent{.link = {kVultrLa, kNtt}, .at = kSecond, .duration = kSecond});

  std::uint64_t delivered = 0;
  wan_.attach(kServerNy, [&delivered](const net::Packet&) { ++delivered; });
  std::vector<std::pair<Time, bgp::RouterId>> hops;
  wan_.set_hop_observer([&hops, this](bgp::RouterId from, bgp::RouterId, const net::Packet&) {
    hops.emplace_back(wan_.now(), from);
  });
  send_at(kSecond / 2, 1000);
  send_at(kSecond + kSecond / 2, 1001);
  send_at(2 * kSecond + kSecond / 2, 1002);
  wan_.events().run_all();

  EXPECT_EQ(delivered, 3u) << "withdraw lets BGP route around the outage";
  EXPECT_EQ(wan_.total_dropped(), 0u);

  auto visited_between = [&hops](Time lo, Time hi, bgp::RouterId router) {
    return std::any_of(hops.begin(), hops.end(), [&](const auto& h) {
      return h.first >= lo && h.first < hi && h.second == router;
    });
  };
  EXPECT_TRUE(visited_between(0, kSecond, kNtt)) << "NTT default before the fault";
  EXPECT_TRUE(visited_between(kSecond, 2 * kSecond, kTelia)) << "rerouted during it";
  EXPECT_FALSE(visited_between(kSecond, 2 * kSecond, kNtt));
  EXPECT_TRUE(visited_between(2 * kSecond, 4 * kSecond, kNtt))
      << "restored session converges back to the NTT default";
}

TEST_F(FaultEventTest, BlackholeKillsBothDirectionsSilently) {
  inject(wan_, BlackholeEvent{.link = {kVultrLa, kNtt}, .at = kSecond, .duration = kSecond});

  std::uint64_t to_ny = 0;
  std::uint64_t to_la = 0;
  wan_.attach(kServerNy, [&to_ny](const net::Packet&) { ++to_ny; });
  wan_.attach(kServerLa, [&to_la](const net::Packet&) { ++to_la; });
  std::vector<bgp::RouterId> visited;
  wan_.set_hop_observer([&visited](bgp::RouterId, bgp::RouterId to, const net::Packet&) {
    visited.push_back(to);
  });

  const Time inside = kSecond + kSecond / 2;
  const Time after = 2 * kSecond + kSecond / 2;
  for (Time t : {inside, after}) {
    wan_.events().schedule_at(t, [this]() { wan_.send_from(kServerLa, la_to_ny(s_)); });
    wan_.events().schedule_at(t, [this]() { wan_.send_from(kServerNy, ny_to_la(s_)); });
  }
  wan_.events().run_all();

  // During the window both directions die; the control plane learns nothing,
  // so the FIB keeps steering into the hole instead of detouring via Telia.
  EXPECT_EQ(to_ny, 1u);
  EXPECT_EQ(to_la, 1u);
  EXPECT_EQ(wan_.dropped(DropReason::link_loss), 2u);
  EXPECT_EQ(std::count(visited.begin(), visited.end(), kTelia), 0)
      << "a silent blackhole must not trigger any reroute";
}

TEST_F(FaultEventTest, SessionResetIsAPureControlPlaneFault) {
  // The NTT<->Vultr-LA session flaps; the physical link keeps forwarding, so
  // nothing is ever dropped — traffic detours and then comes home.
  inject(wan_, SessionResetEvent{.a = kNtt, .b = kVultrLa, .at = kSecond,
                                 .down_for = kSecond});

  std::uint64_t delivered = 0;
  wan_.attach(kServerNy, [&delivered](const net::Packet&) { ++delivered; });
  std::vector<std::pair<Time, bgp::RouterId>> hops;
  wan_.set_hop_observer([&hops, this](bgp::RouterId from, bgp::RouterId, const net::Packet&) {
    hops.emplace_back(wan_.now(), from);
  });
  send_at(kSecond / 2, 1000);
  send_at(kSecond + kSecond / 2, 1001);
  send_at(2 * kSecond + kSecond / 2, 1002);
  wan_.events().run_all();

  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(wan_.total_dropped(), 0u);
  auto visited_between = [&hops](Time lo, Time hi, bgp::RouterId router) {
    return std::any_of(hops.begin(), hops.end(), [&](const auto& h) {
      return h.first >= lo && h.first < hi && h.second == router;
    });
  };
  EXPECT_TRUE(visited_between(kSecond, 2 * kSecond, kTelia));
  EXPECT_FALSE(visited_between(kSecond, 2 * kSecond, kNtt));
  EXPECT_TRUE(visited_between(2 * kSecond, 4 * kSecond, kNtt));
}

TEST_F(FaultEventTest, SessionResetWithNoSessionIsANoOp) {
  inject(wan_, SessionResetEvent{.a = 998, .b = 999, .at = kSecond});
  std::uint64_t delivered = 0;
  wan_.attach(kServerNy, [&delivered](const net::Packet&) { ++delivered; });
  send_at(kSecond + kSecond / 2, 1000);
  wan_.events().run_all();
  EXPECT_EQ(delivered, 1u);
}

TEST_F(FaultEventTest, BurstLossAppliesAndRestoresTheOriginalModel) {
  // Total loss during the window (both GE states drop everything), the
  // profile's original lossless model afterwards.
  inject(wan_, BurstLossEvent{.link = {kNtt, kVultrNy},
                              .at = kSecond,
                              .duration = kSecond,
                              .p_good_to_bad = 1.0,
                              .p_bad_to_good = 0.0,
                              .loss_good = 1.0,
                              .loss_bad = 1.0});

  std::uint64_t delivered = 0;
  wan_.attach(kServerNy, [&delivered](const net::Packet&) { ++delivered; });
  send_at(kSecond / 2, 1000);
  for (int i = 0; i < 3; ++i) send_at(kSecond + (i + 1) * (kSecond / 5), 1001 + i);
  send_at(2 * kSecond + kSecond / 2, 2000);
  wan_.events().run_all();

  EXPECT_EQ(delivered, 2u) << "before and after the window";
  EXPECT_EQ(wan_.dropped(DropReason::link_loss), 3u) << "everything inside it";
}

TEST_F(FaultEventTest, DelayEventInjectionIsPerDirection) {
  // Each direction of a backbone edge is its own link with its own delay
  // model; injecting on one must leave the reverse untouched, and the two
  // can carry independent events.
  inject(wan_, RouteChangeEvent{.link = {kNtt, kVultrNy}, .at = 0});
  EXPECT_EQ(wan_.link(kNtt, kVultrNy).delay().modifier_count(), 1u);
  EXPECT_EQ(wan_.link(kVultrNy, kNtt).delay().modifier_count(), 0u);

  inject(wan_, InstabilityEvent{.link = {kVultrNy, kNtt}, .at = 0});
  EXPECT_EQ(wan_.link(kNtt, kVultrNy).delay().modifier_count(), 1u);
  EXPECT_EQ(wan_.link(kVultrNy, kNtt).delay().modifier_count(), 1u);
}

TEST_F(FaultEventTest, InjectValidatesTheTargetLinkUpFront) {
  EXPECT_THROW(inject(wan_, LinkDownEvent{.link = {kNtt, kServerLa}}), std::out_of_range);
  EXPECT_THROW(inject(wan_, BlackholeEvent{.link = {kNtt, kServerLa}}), std::out_of_range);
  EXPECT_THROW(inject(wan_, BurstLossEvent{.link = {kNtt, kServerLa}}), std::out_of_range);
}

TEST_F(FaultEventTest, FaultScheduleIsDeterministicAcrossBackends) {
  // A run with overlapping faults must be bit-identical under both event
  // queue backends: same deliveries at the same instants, same drop counts.
  auto run = [this](EventQueue::Backend backend) {
    Wan wan{s_.topo, Rng{31}, backend};
    inject(wan, LinkDownEvent{.link = {kVultrLa, kNtt}, .at = kSecond, .duration = kSecond});
    inject(wan, BlackholeEvent{.link = {kVultrLa, kTelia},
                               .at = kSecond + 200 * kMillisecond,
                               .duration = kSecond});
    inject(wan, BurstLossEvent{.link = {kGtt, kVultrNy},
                               .at = 2 * kSecond,
                               .duration = kSecond});
    inject(wan, SessionResetEvent{.a = kNtt, .b = kVultrNy, .at = 3 * kSecond,
                                  .down_for = kSecond});
    std::vector<Time> arrivals;
    wan.attach(kServerNy, [&arrivals, &wan](const net::Packet&) {
      arrivals.push_back(wan.now());
    });
    for (int i = 0; i < 100; ++i) {
      wan.events().schedule_at(i * 50 * kMillisecond, [&wan, this, i]() {
        wan.send_from(kServerLa, la_to_ny(s_, static_cast<std::uint16_t>(1000 + (i % 8))));
      });
    }
    wan.events().run_all();
    struct Result {
      std::vector<Time> arrivals;
      std::uint64_t delivered;
      std::uint64_t dropped;
      bool operator==(const Result&) const = default;
    };
    return Result{std::move(arrivals), wan.delivered(), wan.total_dropped()};
  };
  const auto wheel = run(EventQueue::Backend::timing_wheel);
  const auto heap = run(EventQueue::Backend::binary_heap);
  EXPECT_GT(wheel.delivered, 0u);
  EXPECT_GT(wheel.dropped, 0u) << "the schedule must actually bite";
  EXPECT_TRUE(wheel == heap) << "wheel delivered " << wheel.delivered << "/" << wheel.dropped
                             << " vs heap " << heap.delivered << "/" << heap.dropped;
}

}  // namespace
}  // namespace tango::sim
