#include "sim/clock.hpp"

#include <gtest/gtest.h>

namespace tango::sim {
namespace {

TEST(NodeClock, NoOffsetTracksTrueTime) {
  NodeClock c;
  EXPECT_EQ(c.now(0), 0u);
  EXPECT_EQ(c.now(kSecond), static_cast<std::uint64_t>(kSecond));
}

TEST(NodeClock, ConstantOffsetShiftsUniformly) {
  NodeClock c{3 * kMillisecond};
  EXPECT_EQ(c.now(0), static_cast<std::uint64_t>(3 * kMillisecond));
  // The offset cancels in differences: the core soundness property behind
  // Tango's relative one-way-delay comparisons (§3).
  const auto d1 = c.now(kSecond) - c.now(0);
  NodeClock honest;
  const auto d2 = honest.now(kSecond) - honest.now(0);
  EXPECT_EQ(d1, d2);
}

TEST(NodeClock, NegativeOffsetWrapsConsistently) {
  NodeClock c{-5 * kMillisecond};
  // Differences still come out right even when now() wrapped below zero.
  const std::uint64_t a = c.now(10 * kMillisecond);
  const std::uint64_t b = c.now(30 * kMillisecond);
  EXPECT_EQ(static_cast<Time>(b - a), 20 * kMillisecond);
}

TEST(NodeClock, DriftAccumulates) {
  NodeClock c{0, /*drift_ppm=*/100.0};  // 100 us per second
  const std::uint64_t at_1s = c.now(kSecond);
  EXPECT_EQ(static_cast<Time>(at_1s) - kSecond, 100 * kMicrosecond);
  const std::uint64_t at_100s = c.now(100 * kSecond);
  EXPECT_EQ(static_cast<Time>(at_100s) - 100 * kSecond, 10 * kMillisecond);
}

TEST(NodeClock, SettersWork) {
  NodeClock c;
  c.set_offset(7);
  c.set_drift_ppm(1.5);
  EXPECT_EQ(c.offset(), 7);
  EXPECT_DOUBLE_EQ(c.drift_ppm(), 1.5);
}

}  // namespace
}  // namespace tango::sim
