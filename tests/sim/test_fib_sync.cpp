// Incremental control→data-plane convergence: the delta path of sync_fibs()
// must be indistinguishable from the full-rebuild oracle — identical FIB
// digests under randomized churn, identical forwarding decisions, and no
// stale flow-cache entry ever served after a per-prefix invalidation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/wan.hpp"
#include "topo/mesh_gen.hpp"
#include "topo/topology.hpp"

namespace tango::sim {
namespace {

net::Ipv4Prefix stub_prefix(std::uint32_t index) {
  return net::Ipv4Prefix{net::Ipv4Address{0x0A000000u | (index << 8)}, 24};
}

net::Ipv4Address host_in(std::uint32_t index, std::uint8_t host) {
  return net::Ipv4Address{0x0A000000u | (index << 8) | host};
}

/// A small deterministic mesh (44 routers, 96 prefixes) shared by the
/// churn-equality tests; convergence at this scale is cheap enough to run
/// unbatched per round.
topo::MeshParams small_mesh() {
  topo::MeshParams params;
  params.tier1 = 4;
  params.tier2 = 8;
  params.stubs = 32;
  params.prefixes_per_stub = 3;
  params.seed = 42;
  return params;
}

/// Deterministic per-test RNG (xorshift64) for churn choices, independent of
/// the Wan's own draws.
struct Churn {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// Under randomized withdraw/re-originate churn, an incremental Wan and a
// full-rebuild oracle on the same topology must agree digest-for-digest
// after every round.  The oracle syncs FIRST each round: full mode must not
// consume the speakers' dirty lists out from under the incremental Wan.
TEST(FibSync, IncrementalMatchesFullRebuildUnderChurn) {
  topo::Topology topo;
  const topo::Mesh mesh = topo::generate_mesh(topo, small_mesh());
  topo.bgp().set_message_limit(50'000'000);
  topo.bgp().run_to_convergence();

  Wan inc{topo, Rng{1}, WanOptions{.fib_sync = FibSync::incremental}};
  Wan full{topo, Rng{1}, WanOptions{.fib_sync = FibSync::full_rebuild}};
  ASSERT_EQ(inc.fib_digest(), full.fib_digest()) << "initial FIBs must match";
  EXPECT_EQ(inc.fib_sync_stats().full_rebuilds, 1u) << "first sync is always full";

  Churn rng{0xC0FFEEu};
  const auto total = static_cast<std::uint32_t>(mesh.originations.size());
  for (int round = 0; round < 20; ++round) {
    const auto& [origin, prefix] = mesh.originations[rng.below(total)];
    if (topo.bgp().router(origin).originates(prefix)) {
      topo.bgp().withdraw(origin, prefix);
    } else {
      topo.bgp().originate(origin, prefix);
    }
    full.sync_fibs();  // oracle first: must leave the dirty lists intact
    inc.sync_fibs();
    ASSERT_EQ(inc.fib_digest(), full.fib_digest()) << "divergence at round " << round;
  }
  EXPECT_GT(inc.fib_sync_stats().delta_applies, 0u)
      << "churn at this scale must exercise the delta path, not rebuilds";
  EXPECT_EQ(full.fib_sync_stats().delta_applies, 0u);
  EXPECT_EQ(full.fib_sync_stats().full_rebuilds, 21u);
}

// Forwarding equivalence: after each churn round both Wans must move packets
// along identical hop sequences (the mesh profile is lossless and
// jitter-free, so paths are a pure function of the FIBs).
TEST(FibSync, ForwardingMatchesOracleAfterChurn) {
  topo::Topology topo;
  const topo::Mesh mesh = topo::generate_mesh(topo, small_mesh());
  topo.bgp().set_message_limit(50'000'000);
  topo.bgp().run_to_convergence();

  Wan inc{topo, Rng{1}, WanOptions{.fib_sync = FibSync::incremental}};
  Wan full{topo, Rng{1}, WanOptions{.fib_sync = FibSync::full_rebuild}};
  for (bgp::RouterId stub : mesh.stubs) {
    inc.attach(stub, [](net::Packet&) {});
    full.attach(stub, [](net::Packet&) {});
  }

  const std::vector<std::uint8_t> payload{0xAB};
  auto hops_of = [&payload](Wan& wan, std::uint32_t from_stub_index,
                            bgp::RouterId from_router, std::uint32_t to_index,
                            std::uint16_t sport) {
    std::vector<bgp::RouterId> hops;
    wan.set_hop_observer([&hops](bgp::RouterId from, bgp::RouterId, const net::Packet&) {
      hops.push_back(from);
    });
    wan.send_from(from_router,
                  net::make_udp4_packet(host_in(from_stub_index * 3, 1), host_in(to_index, 9),
                                        sport, 7, payload));
    wan.run_all();
    wan.set_hop_observer({});
    return hops;
  };

  Churn rng{0xBEEFu};
  const auto total = static_cast<std::uint32_t>(mesh.originations.size());
  std::uint16_t sport = 20000;
  for (int round = 0; round < 10; ++round) {
    const auto& [origin, prefix] = mesh.originations[rng.below(total)];
    if (topo.bgp().router(origin).originates(prefix)) {
      topo.bgp().withdraw(origin, prefix);
    } else {
      topo.bgp().originate(origin, prefix);
    }
    full.sync_fibs();
    inc.sync_fibs();

    // Probe a handful of random stub-to-stub flows; fresh sport per probe so
    // each is a new flow (cold caches exercise the trie, repeats the cache).
    for (int probe = 0; probe < 4; ++probe) {
      const auto from = static_cast<std::uint32_t>(rng.below(mesh.stubs.size()));
      const auto to_index = static_cast<std::uint32_t>(rng.below(total));
      ++sport;
      const auto inc_hops = hops_of(inc, from, mesh.stubs[from], to_index, sport);
      const auto full_hops = hops_of(full, from, mesh.stubs[from], to_index, sport);
      ASSERT_EQ(inc_hops, full_hops)
          << "round " << round << " probe " << probe << ": stale forwarding state";
    }
    ASSERT_EQ(inc.delivered(), full.delivered());
    ASSERT_EQ(inc.total_dropped(), full.total_dropped());
  }
}

// A bulk change (session teardown dirtying >kFibDirtyLimit prefixes) must
// trip the overflow flag and fall back to a per-router rebuild — and still
// match the oracle.
TEST(FibSync, DirtyOverflowFallsBackToRouterRebuild) {
  constexpr std::uint32_t kPrefixes = bgp::BgpSpeaker::kFibDirtyLimit + 76;  // 1100
  topo::Topology topo;
  topo.add_router(1, 100, "A");
  topo.add_router(2, 200, "B");
  const topo::LinkProfile wire{.base_delay_ms = 1.0};
  topo.add_transit(/*provider=*/1, /*customer=*/2, wire, wire);
  for (std::uint32_t i = 0; i < kPrefixes; ++i) {
    topo.bgp().router(1).originate(net::Prefix{stub_prefix(i)});
  }
  topo.bgp().set_message_limit(50'000'000);
  topo.bgp().run_to_convergence();

  Wan inc{topo, Rng{1}, WanOptions{.fib_sync = FibSync::incremental}};
  Wan full{topo, Rng{1}, WanOptions{.fib_sync = FibSync::full_rebuild}};
  ASSERT_EQ(inc.fib_digest(), full.fib_digest());

  // Teardown wipes B's 1100 learned prefixes at once: dirty-list overflow.
  topo.bgp().remove_session(1, 2);
  EXPECT_TRUE(topo.bgp().router(2).fib_dirty_overflowed());

  inc.sync_fibs();
  full.sync_fibs();
  EXPECT_EQ(inc.fib_digest(), full.fib_digest());
  EXPECT_GE(inc.fib_sync_stats().router_rebuilds, 1u)
      << "overflow must fall back to a per-router rebuild";
  EXPECT_FALSE(topo.bgp().router(2).fib_dirty_overflowed())
      << "incremental sync must consume the overflow flag";

  // The fallback is per-router: a subsequent small change rides the delta path.
  const std::uint64_t deltas_before = inc.fib_sync_stats().delta_applies;
  topo.bgp().router(1).withdraw_origin(net::Prefix{stub_prefix(0)});
  topo.bgp().run_to_convergence();
  inc.sync_fibs();
  full.sync_fibs();
  EXPECT_EQ(inc.fib_digest(), full.fib_digest());
  EXPECT_GT(inc.fib_sync_stats().delta_applies, deltas_before);
}

// Per-prefix flow-cache invalidation on a 3-router chain: churning one
// prefix must zero exactly the cached ways that prefix covers (one per
// router on the warmed path), leave the unrelated flow's entries hot, and
// never serve the stale next hop for the withdrawn prefix.
TEST(FibSync, PerPrefixInvalidationIsSurgical) {
  topo::Topology topo;
  topo.add_router(1, 100, "A");
  topo.add_router(2, 200, "B");
  topo.add_router(3, 300, "C");
  const topo::LinkProfile wire{.base_delay_ms = 1.0};
  topo.add_transit(/*provider=*/2, /*customer=*/1, wire, wire);
  topo.add_transit(/*provider=*/2, /*customer=*/3, wire, wire);
  const net::Prefix keep{stub_prefix(1)};   // stays originated at C
  const net::Prefix churn{stub_prefix(2)};  // withdrawn mid-test
  topo.bgp().router(3).originate(keep);
  topo.bgp().router(3).originate(churn);
  topo.bgp().run_to_convergence();

  Wan wan{topo, Rng{1}, WanOptions{.fib_sync = FibSync::incremental}};
  std::uint64_t delivered = 0;
  wan.attach(3, [&delivered](net::Packet&) { ++delivered; });

  const std::vector<std::uint8_t> payload{0x01};
  auto send = [&](std::uint32_t index, std::uint16_t sport) {
    wan.send_from(1,
                  net::make_udp4_packet(host_in(1, 1), host_in(index, 5), sport, 7, payload));
    wan.run_all();
  };

  // Warm both flows along A -> B -> C (three lookups each, all cold).
  send(1, 1111);
  send(2, 2222);
  ASSERT_EQ(delivered, 2u);
  ASSERT_EQ(wan.fib_lookups(), 6u);
  ASSERT_EQ(wan.fib_cache_hits(), 0u);

  const std::uint64_t invalidations_before = wan.fib_sync_stats().prefix_invalidations;
  topo.bgp().withdraw(3, churn);
  wan.sync_fibs();

  // One cached way per router covered the churned prefix; nothing else.
  EXPECT_EQ(wan.fib_sync_stats().prefix_invalidations - invalidations_before, 3u);
  EXPECT_EQ(wan.fib_sync_stats().generation_invalidations, 3u)
      << "only the construction-time full sync may bump generations";

  // The untouched flow stays cached: every hop of a repeat is a cache hit.
  send(1, 1111);
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(wan.fib_cache_hits(), 3u);

  // The churned flow must take the trie walk (no stale cached next hop) and
  // discover the prefix is gone.
  send(2, 2222);
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(wan.dropped(DropReason::no_route), 1u)
      << "a stale flow-cache entry served a withdrawn prefix";
  EXPECT_EQ(wan.fib_cache_hits(), 3u);
}

// Mode plumbing: the runtime switch and the constructor option agree, and
// stats distinguish the two paths.
TEST(FibSync, ModeSelectionAndStats) {
  topo::Topology topo;
  topo.add_router(1, 100, "A");
  topo.add_router(2, 200, "B");
  const topo::LinkProfile wire{.base_delay_ms = 1.0};
  topo.add_transit(1, 2, wire, wire);
  topo.bgp().router(1).originate(net::Prefix{stub_prefix(0)});
  topo.bgp().run_to_convergence();

  Wan wan{topo, Rng{1}};  // default options
  EXPECT_EQ(wan.fib_sync_mode(), FibSync::incremental);
  EXPECT_EQ(wan.fib_sync_stats().syncs, 1u);
  EXPECT_EQ(wan.fib_sync_stats().full_rebuilds, 1u);

  topo.bgp().router(1).originate(net::Prefix{stub_prefix(1)});
  topo.bgp().run_to_convergence();
  wan.sync_fibs();
  EXPECT_EQ(wan.fib_sync_stats().syncs, 2u);
  EXPECT_GT(wan.fib_sync_stats().delta_applies, 0u);

  wan.set_fib_sync_mode(FibSync::full_rebuild);
  EXPECT_EQ(wan.fib_sync_mode(), FibSync::full_rebuild);
  const std::uint64_t rebuilds = wan.fib_sync_stats().full_rebuilds;
  wan.sync_fibs();
  EXPECT_EQ(wan.fib_sync_stats().full_rebuilds, rebuilds + 1);
}

}  // namespace
}  // namespace tango::sim
