// Boundary and determinism tests for the timing-wheel scheduler, run against
// the binary-heap reference backend wherever the contract is shared.
#include "sim/timing_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"

namespace tango::sim {
namespace {

class BothBackends : public ::testing::TestWithParam<EventQueue::Backend> {};

INSTANTIATE_TEST_SUITE_P(Schedulers, BothBackends,
                         ::testing::Values(EventQueue::Backend::timing_wheel,
                                           EventQueue::Backend::binary_heap),
                         [](const auto& info) {
                           return info.param == EventQueue::Backend::timing_wheel ? "wheel"
                                                                                  : "heap";
                         });

TEST_P(BothBackends, EventExactlyAtRunUntilBoundFires) {
  EventQueue q{GetParam()};
  int fired = 0;
  q.schedule_at(1000, [&fired] { ++fired; });
  q.schedule_at(1001, [&fired] { fired += 100; });
  q.run_until(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 1000);
  EXPECT_EQ(q.pending(), 1u);
}

TEST_P(BothBackends, ClockRestsExactlyAtUntil) {
  EventQueue q{GetParam()};
  q.schedule_at(10, [] {});
  q.run_until(5'000'000);
  EXPECT_EQ(q.now(), 5'000'000);
  q.run_until(6'000'000);  // empty queue: clock still advances to the bound
  EXPECT_EQ(q.now(), 6'000'000);
}

TEST_P(BothBackends, FifoAcrossCascadeDepths) {
  // Two events at the same timestamp, scheduled from very different "now"s:
  // the first lands in a high wheel level and cascades down, the second is
  // scheduled straight into level 0 after the clock has moved close to the
  // deadline.  FIFO (scheduling order) must survive the cascades.
  EventQueue q{GetParam()};
  std::vector<int> order;
  const Time target = 40 * kMillisecond;
  q.schedule_at(target, [&order] { order.push_back(1) ; });          // deep level
  q.schedule_at(target - 100, [&order, &q, target] {
    order.push_back(0);
    q.schedule_at(target, [&order] { order.push_back(2); });         // level 0
  });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.now(), target);
}

TEST_P(BothBackends, FifoForManyEqualTimestampsAcrossWindows) {
  // Equal-timestamp events scheduled from several different distances (each
  // landing in a different wheel level before cascading into the same
  // bucket) fire strictly in scheduling order.
  EventQueue q{GetParam()};
  const Time target = 300 * kMillisecond;
  std::vector<int> order;
  int label = 0;
  // Scheduled at t=0: deltas of ~300ms (level 3).
  for (int i = 0; i < 4; ++i) {
    q.schedule_at(target, [&order, label] { order.push_back(label); });
    ++label;
  }
  // Stepping stones that schedule more equal-time events ever closer in.
  for (Time lead : {200 * kMillisecond, 2 * kMillisecond, 40 * kMicrosecond, Time{200}}) {
    q.schedule_at(target - lead, [&q, &order, &label, target] {
      for (int i = 0; i < 2; ++i) {
        q.schedule_at(target, [&order, lbl = label] { order.push_back(lbl); });
        ++label;
      }
    });
  }
  q.run_all();
  ASSERT_EQ(order.size(), 12u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
      << "equal-time events must fire in scheduling order";
}

TEST_P(BothBackends, FarFutureEventsSurviveCascades) {
  // An event beyond the wheel span (2^48 ns ~ 3.3 days) rides the overflow
  // heap; near-term churn and window advances must not disturb it.
  EventQueue q{GetParam()};
  const Time far_out = Time{1} << 49;
  bool far_fired = false;
  int near_fired = 0;
  q.schedule_at(far_out, [&far_fired] { far_fired = true; });
  for (int i = 1; i <= 50; ++i) {
    q.schedule_at(i * kHour, [&near_fired] { ++near_fired; });
  }
  q.run_until(far_out - 1);
  EXPECT_EQ(near_fired, 50);
  EXPECT_FALSE(far_fired);
  EXPECT_EQ(q.pending(), 1u);
  q.run_all();
  EXPECT_TRUE(far_fired);
  EXPECT_EQ(q.now(), far_out);
}

TEST_P(BothBackends, FarFutureTiebreaksAgainstWheelEntries) {
  // A far-future event at time T scheduled *before* a wheel event at the
  // same T must fire first (lower seq), even though they live in different
  // structures.
  EventQueue q{GetParam()};
  const Time t = (Time{1} << 49) + 12345;
  std::vector<int> order;
  q.schedule_at(t, [&order] { order.push_back(0); });  // overflow heap
  q.schedule_at(t - kMillisecond, [&q, &order, t] {    // near t: wheel
    q.schedule_at(t, [&order] { order.push_back(1); });
  });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST_P(BothBackends, EpochBoundaryWrapDoesNotSkipEvents) {
  // Events placed just after a 2^16/2^24-aligned boundary while the cursor
  // sits just before it exercise the wrapped-slot paths of the wheel.
  EventQueue q{GetParam()};
  std::vector<Time> fired;
  const std::vector<Time> anchors = {(Time{1} << 16) - 3, (Time{1} << 24) - 2,
                                     (Time{1} << 32) - 5, (Time{1} << 40) - 1};
  for (Time a : anchors) {
    for (Time d : {Time{0}, Time{1}, Time{2}, Time{255}, Time{256}, Time{70000}}) {
      q.schedule_at(a + d, [&fired, t = a + d] { fired.push_back(t); });
    }
  }
  q.run_all();
  ASSERT_EQ(fired.size(), anchors.size() * 6);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(q.executed(), fired.size());
}

TEST_P(BothBackends, RunUntilThenLateSchedulingStaysConsistent) {
  // run_until far past the last event, then schedule again near "now": the
  // wheel cursor must not have been advanced beyond the clock.
  EventQueue q{GetParam()};
  int fired = 0;
  q.schedule_at(10 * kSecond, [&fired] { ++fired; });
  q.run_until(kMinute);
  EXPECT_EQ(fired, 1);
  q.schedule_at(kMinute, [&fired] { fired += 10; });      // exactly at now
  q.schedule_at(kMinute + 5, [&fired] { fired += 100; });
  q.run_all();
  EXPECT_EQ(fired, 111);
}

TEST_P(BothBackends, PendingBoundedRunUntilDoesNotAdvancePastLimit) {
  // An event far beyond the run_until bound must stay pending and intact
  // even when the bound lands inside an empty stretch of the wheel.
  EventQueue q{GetParam()};
  int fired = 0;
  q.schedule_at(2 * kHour, [&fired] { ++fired; });
  for (Time t = kSecond; t <= 10 * kSecond; t += kSecond) {
    q.schedule_at(t, [] {});
  }
  q.run_until(kMinute);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.pending(), 1u);
  // Scheduling between the bound and the far event must still be possible
  // and fire in order.
  std::vector<int> order;
  q.schedule_at(kMinute + 1, [&order] { order.push_back(1); });
  q.schedule_at(2 * kHour, [&order] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimingWheel, MatchesHeapOnRandomizedWorkload) {
  // Property test: a random mix of immediate, short-, mid- and long-horizon
  // events (some rescheduling on execution, like forwarding hops do) must
  // produce the identical execution trace on both backends.
  for (std::uint32_t seed : {1u, 7u, 42u, 1234u}) {
    auto run = [seed](EventQueue::Backend backend) {
      EventQueue q{backend};
      std::mt19937 rng{seed};
      std::vector<std::pair<Time, int>> trace;
      int next_id = 0;
      // Delay mix mirrors the WAN: many sub-ms and ms-scale, a few huge.
      auto random_delay = [&rng]() -> Time {
        switch (rng() % 8) {
          case 0: return 0;
          case 1: return static_cast<Time>(rng() % 256);
          case 2: return static_cast<Time>(rng() % kMicrosecond);
          case 3:
          case 4:
          case 5: return static_cast<Time>(rng() % (50 * kMillisecond));
          case 6: return static_cast<Time>(rng() % kMinute);
          default: return static_cast<Time>(rng() % (100 * kHour));
        }
      };
      std::function<void(int, int)> hop = [&](int id, int remaining) {
        trace.emplace_back(q.now(), id);
        if (remaining > 0) {
          q.schedule_in(random_delay(),
                        [&hop, id = next_id++, remaining] { hop(id, remaining - 1); });
        }
      };
      for (int i = 0; i < 200; ++i) {
        q.schedule_at(random_delay(), [&hop, id = next_id++] { hop(id, 3); });
      }
      q.run_all();
      return trace;
    };
    const auto wheel = run(EventQueue::Backend::timing_wheel);
    const auto heap = run(EventQueue::Backend::binary_heap);
    EXPECT_EQ(wheel, heap) << "seed " << seed;
  }
}

TEST(TimingWheel, ClearDropsWheelFarAndStagedEntries) {
  EventQueue q{EventQueue::Backend::timing_wheel};
  int fired = 0;
  q.schedule_at(5, [&fired] { ++fired; });
  q.schedule_at(40 * kMillisecond, [&fired] { ++fired; });
  q.schedule_at(Time{1} << 50, [&fired] { ++fired; });
  EXPECT_EQ(q.pending(), 3u);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.run_all();
  EXPECT_EQ(fired, 0);
  // The queue stays usable after clear().
  q.schedule_at(q.now() + 10, [&fired] { fired = 77; });
  q.run_all();
  EXPECT_EQ(fired, 77);
}

TEST(TimingWheel, DrainsSameTimestampBatchFifo) {
  // The burst path: many events at one timestamp drain as a staged batch.
  TimingWheel w;
  std::vector<std::uint64_t> seqs;
  for (std::uint64_t s = 0; s < 100; ++s) {
    w.schedule(123456, s, [] {});
  }
  EXPECT_EQ(w.size(), 100u);
  EXPECT_EQ(w.peek(), 123456);
  std::uint64_t expected = 0;
  while (!w.empty()) {
    auto p = w.pop(kSecond);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.at, 123456);
    ++expected;
  }
  EXPECT_EQ(expected, 100u);
}

}  // namespace
}  // namespace tango::sim
