#include "telemetry/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace tango::telemetry {
namespace {

TEST(Summarize, EmptyIsZeroed) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicStats) {
  Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Summarize, Percentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  Summary s = summarize(v);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
}

TEST(TimeSeries, RecordAndSummary) {
  TimeSeries ts{"owd"};
  for (int i = 0; i < 10; ++i) ts.record(i * sim::kSecond, 30.0 + i);
  EXPECT_EQ(ts.size(), 10u);
  EXPECT_EQ(ts.name(), "owd");
  EXPECT_DOUBLE_EQ(ts.summary().mean, 34.5);
  EXPECT_DOUBLE_EQ(*ts.min_value(), 30.0);
  EXPECT_DOUBLE_EQ(*ts.max_value(), 39.0);
}

TEST(TimeSeries, SummaryBetweenIsHalfOpen) {
  TimeSeries ts;
  ts.record(0, 1.0);
  ts.record(10, 2.0);
  ts.record(20, 3.0);
  Summary s = ts.summary_between(0, 20);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 1.5);
}

TEST(TimeSeries, RollingStddevConstantIsZero) {
  TimeSeries ts;
  for (int i = 0; i < 1000; ++i) ts.record(i * 10 * sim::kMillisecond, 27.5);
  EXPECT_DOUBLE_EQ(ts.rolling_stddev(sim::kSecond), 0.0);
}

TEST(TimeSeries, RollingStddevSeesVariation) {
  TimeSeries ts;
  // Alternate 30/31 within every window: per-window stddev ~0.5.
  for (int i = 0; i < 1000; ++i) {
    ts.record(i * 10 * sim::kMillisecond, i % 2 == 0 ? 30.0 : 31.0);
  }
  EXPECT_NEAR(ts.rolling_stddev(sim::kSecond), 0.5, 0.01);
}

TEST(TimeSeries, RollingStddevSkipsSparseWindows) {
  TimeSeries ts;
  ts.record(0, 1.0);                    // lone sample in its window
  ts.record(10 * sim::kSecond, 5.0);    // lone sample
  EXPECT_DOUBLE_EQ(ts.rolling_stddev(sim::kSecond), 0.0);
}

TEST(TimeSeries, DownsampleAveragesBuckets) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) ts.record(i * sim::kMillisecond, static_cast<double>(i));
  auto buckets = ts.downsample(0, 100 * sim::kMillisecond, 10 * sim::kMillisecond);
  ASSERT_EQ(buckets.size(), 10u);
  EXPECT_DOUBLE_EQ(buckets[0].value, 4.5);   // avg of 0..9
  EXPECT_DOUBLE_EQ(buckets[9].value, 94.5);  // avg of 90..99
  EXPECT_THROW(ts.downsample(0, 1, 0), std::invalid_argument);
}

TEST(TimeSeries, DownsampleSkipsEmptyBuckets) {
  TimeSeries ts;
  ts.record(0, 1.0);
  ts.record(35 * sim::kMillisecond, 2.0);
  auto buckets = ts.downsample(0, 40 * sim::kMillisecond, 10 * sim::kMillisecond);
  ASSERT_EQ(buckets.size(), 2u);  // empty middle buckets omitted
}

TEST(TimeSeries, CsvWrite) {
  TimeSeries ts{"delay_ms"};
  ts.record(sim::kSecond, 27.5);
  ts.record(2 * sim::kSecond, 28.0);
  const std::string path = ::testing::TempDir() + "/tango_ts_test.csv";
  ts.write_csv(path);
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time_s,delay_ms");
  std::getline(in, line);
  EXPECT_EQ(line, "1,27.5");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tango::telemetry
