#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace tango::telemetry {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddSubAndSignedValues) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
}

// --- Histogram bucket geometry ------------------------------------------------

TEST(Histogram, SmallValuesGetExactBuckets) {
  // Below 2^kSubBits every value has its own bucket: index == value.
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower_bound(v), v);
  }
}

TEST(Histogram, FirstOctaveAboveLinearRangeIsStillExact) {
  // [16, 32): octave 0, shift 0 — still one bucket per value.
  EXPECT_EQ(Histogram::bucket_index(16), 16u);
  EXPECT_EQ(Histogram::bucket_index(31), 31u);
  EXPECT_EQ(Histogram::bucket_lower_bound(16), 16u);
  EXPECT_EQ(Histogram::bucket_lower_bound(31), 31u);
}

TEST(Histogram, SecondOctaveHasWidthTwoBuckets) {
  // [32, 64): 16 buckets of width 2.
  EXPECT_EQ(Histogram::bucket_index(32), 32u);
  EXPECT_EQ(Histogram::bucket_index(33), 32u);
  EXPECT_EQ(Histogram::bucket_index(34), 33u);
  EXPECT_EQ(Histogram::bucket_index(63), 47u);
  EXPECT_EQ(Histogram::bucket_lower_bound(32), 32u);
  EXPECT_EQ(Histogram::bucket_lower_bound(47), 62u);
  EXPECT_EQ(Histogram::bucket_lower_bound(48), 64u);
}

TEST(Histogram, IndexIsMonotoneAndLowerBoundInverts) {
  std::uint64_t prev_index = 0;
  for (std::uint64_t v = 0; v < 100000; v += 7) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_GE(i, prev_index);
    prev_index = i;
    // v lands in a bucket whose range contains it.
    EXPECT_LE(Histogram::bucket_lower_bound(i), v);
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_GT(Histogram::bucket_lower_bound(i + 1), v);
    }
  }
}

TEST(Histogram, RelativeErrorBoundedBySubBucketWidth) {
  // Bucket width / lower bound <= 2^-kSubBits for values past the linear range.
  for (std::uint64_t v = Histogram::kSubBuckets; v < (1ull << 30); v = v * 3 + 1) {
    const std::size_t i = Histogram::bucket_index(v);
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    const std::uint64_t hi = Histogram::bucket_lower_bound(i + 1);
    EXPECT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo),
              1.0 / static_cast<double>(Histogram::kSubBuckets));
  }
}

TEST(Histogram, HugeValuesClampIntoLastBucket) {
  EXPECT_EQ(Histogram::bucket_index(~0ull), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(1ull << 63), Histogram::kBuckets - 1);
  Histogram h;
  h.record(~0ull);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1u);
}

TEST(Histogram, CountSumMaxMean) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, QuantilesBracketTheDistribution) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // Estimates overshoot by at most one sub-bucket (6.25%).
  EXPECT_GE(h.value_at_quantile(0.5), 500u);
  EXPECT_LE(h.value_at_quantile(0.5), 532u);
  EXPECT_GE(h.value_at_quantile(0.99), 990u);
  EXPECT_LE(h.value_at_quantile(0.99), 1055u);
  // Extremes.
  EXPECT_EQ(h.value_at_quantile(0.0), Histogram::bucket_lower_bound(Histogram::bucket_index(1) + 1) - 1);
  EXPECT_GE(h.value_at_quantile(1.0), 1000u);
  Histogram empty;
  EXPECT_EQ(empty.value_at_quantile(0.5), 0u);
}

// --- Registry ----------------------------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("tango_test_total", {{"node", "la"}});
  Counter& b = reg.counter("tango_test_total", {{"node", "la"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, DistinctLabelsAreDistinctInstruments) {
  MetricsRegistry reg;
  Counter& la = reg.counter("tango_test_total", {{"node", "la"}});
  Counter& ny = reg.counter("tango_test_total", {{"node", "ny"}});
  EXPECT_NE(&la, &ny);
  la.inc(3);
  ny.inc(4);
  EXPECT_EQ(la.value(), 3u);
  EXPECT_EQ(ny.value(), 4u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, KindsShareNamespaceWithoutCollision) {
  MetricsRegistry reg;
  (void)reg.counter("tango_a", {});
  (void)reg.gauge("tango_b", {});
  (void)reg.histogram("tango_c", {});
  ASSERT_EQ(reg.size(), 3u);
  const std::vector<MetricEntry> entries = reg.entries();
  EXPECT_EQ(entries[0].kind, MetricKind::counter);
  EXPECT_EQ(entries[1].kind, MetricKind::gauge);
  EXPECT_EQ(entries[2].kind, MetricKind::histogram);
  EXPECT_NE(entries[0].counter, nullptr);
  EXPECT_NE(entries[1].gauge, nullptr);
  EXPECT_NE(entries[2].histogram, nullptr);
}

TEST(MetricsRegistry, EntriesPreserveRegistrationOrder) {
  MetricsRegistry reg;
  (void)reg.counter("tango_z_total", {}, "last name, first registered");
  (void)reg.counter("tango_a_total", {});
  const auto entries = reg.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "tango_z_total");
  EXPECT_EQ(entries[0].help, "last name, first registered");
  EXPECT_EQ(entries[1].name, "tango_a_total");
}

TEST(MetricsRegistry, InstrumentAddressesStableAcrossGrowth) {
  MetricsRegistry reg;
  Counter& first = reg.counter("tango_first_total", {});
  first.inc(7);
  for (int i = 0; i < 200; ++i) {
    (void)reg.counter("tango_filler_total", {{"i", std::to_string(i)}});
  }
  // Deque storage: the early pointer must still be the live instrument.
  EXPECT_EQ(&reg.counter("tango_first_total", {}), &first);
  EXPECT_EQ(first.value(), 7u);
}

TEST(MetricsRegistry, NullableHelpersTolerateUnwiredPointers) {
  inc(nullptr);
  observe(nullptr, 5);
  set(nullptr, 1);
  Counter c;
  Histogram h;
  Gauge g;
  inc(&c, 2);
  observe(&h, 3);
  set(&g, 4);
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(g.value(), 4);
}

}  // namespace
}  // namespace tango::telemetry
