#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tango::telemetry {
namespace {

TraceEvent event(std::uint64_t key, TraceStage stage = TraceStage::encap,
                 std::uint16_t path = 1, TraceCause cause = TraceCause::none) {
  return TraceEvent{.at = static_cast<sim::Time>(key) * sim::kMillisecond,
                    .key = key,
                    .node = 7,
                    .path = path,
                    .stage = stage,
                    .cause = cause};
}

TEST(PacketTracer, StartsDisarmedAndRecordsNothing) {
  PacketTracer t{8};
  EXPECT_FALSE(t.armed());
  t.record(event(0));
  EXPECT_EQ(t.stored(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(PacketTracer, EnableAllKeepsEverything) {
  PacketTracer t{8};
  t.enable_all();
  EXPECT_TRUE(t.armed());
  for (std::uint64_t k = 0; k < 5; ++k) t.record(event(k));
  EXPECT_EQ(t.stored(), 5u);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.front().key, 0u);
  EXPECT_EQ(events.back().key, 4u);
}

TEST(PacketTracer, RingWrapsAroundKeepingNewest) {
  PacketTracer t{4};
  t.enable_all();
  for (std::uint64_t k = 0; k < 10; ++k) t.record(event(k));
  EXPECT_EQ(t.stored(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order with the oldest six overwritten.
  EXPECT_EQ(events[0].key, 6u);
  EXPECT_EQ(events[1].key, 7u);
  EXPECT_EQ(events[2].key, 8u);
  EXPECT_EQ(events[3].key, 9u);
}

TEST(PacketTracer, WrapBoundaryIsExact) {
  PacketTracer t{4};
  t.enable_all();
  for (std::uint64_t k = 0; k < 4; ++k) t.record(event(k));
  // Exactly full, not yet wrapped: order must start at the true oldest.
  auto events = t.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].key, 0u);
  t.record(event(4));  // first overwrite
  events = t.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].key, 1u);
  EXPECT_EQ(events[3].key, 4u);
}

TEST(PacketTracer, SamplingKeepsWholeLifecyclesTogether) {
  PacketTracer t{64};
  t.enable_sampled(4);
  // Two lifecycles: key 8 (sampled), key 9 (not).
  for (const std::uint64_t key : {8ull, 9ull}) {
    t.record(event(key, TraceStage::encap));
    t.record(event(key, TraceStage::wan_enqueue));
    t.record(event(key, TraceStage::decap));
  }
  const auto events = t.events();
  ASSERT_EQ(events.size(), 3u);
  for (const TraceEvent& e : events) EXPECT_EQ(e.key, 8u);
  EXPECT_EQ(events[0].stage, TraceStage::encap);
  EXPECT_EQ(events[1].stage, TraceStage::wan_enqueue);
  EXPECT_EQ(events[2].stage, TraceStage::decap);
}

TEST(PacketTracer, WatchedPathBypassesSampling) {
  PacketTracer t{64};
  t.enable_sampled(1000);
  t.watch_path(3);
  t.record(event(17, TraceStage::encap, /*path=*/3));
  t.record(event(17, TraceStage::encap, /*path=*/2));
  ASSERT_EQ(t.stored(), 1u);
  EXPECT_EQ(t.events()[0].path, 3u);
  t.clear_watches();
  t.record(event(17, TraceStage::encap, /*path=*/3));
  EXPECT_EQ(t.stored(), 1u);
}

TEST(PacketTracer, WatchAloneArmsTheTracer) {
  PacketTracer t{8};
  t.watch_path(2);
  EXPECT_TRUE(t.armed());
  t.record(event(5, TraceStage::drop, /*path=*/2, TraceCause::link_loss));
  EXPECT_EQ(t.stored(), 1u);
  t.disable();
  EXPECT_FALSE(t.armed());
}

TEST(PacketTracer, DumpIsHumanReadable) {
  PacketTracer t{8};
  t.enable_all();
  t.record(event(42, TraceStage::drop, /*path=*/2, TraceCause::link_loss));
  const std::string text = t.dump();
  EXPECT_NE(text.find("drop"), std::string::npos);
  EXPECT_NE(text.find("link-loss"), std::string::npos);
  EXPECT_NE(text.find("path=2"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(PacketTracer, ClearResetsRingButKeepsArming) {
  PacketTracer t{8};
  t.enable_all();
  t.record(event(1));
  t.clear();
  EXPECT_EQ(t.stored(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.armed());
  t.record(event(2));
  EXPECT_EQ(t.stored(), 1u);
}

TEST(PacketTracer, StageAndCauseNamesRoundTrip) {
  EXPECT_STREQ(to_string(TraceStage::route_select), "route-select");
  EXPECT_STREQ(to_string(TraceStage::report), "report");
  EXPECT_STREQ(to_string(TraceCause::no_tunnel), "no-tunnel");
  EXPECT_STREQ(to_string(TraceCause::auth_fail), "auth-fail");
}

}  // namespace
}  // namespace tango::telemetry
