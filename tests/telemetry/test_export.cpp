#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace tango::telemetry {
namespace {

/// A small registry with every instrument kind and deterministic values,
/// shared by the golden-file checks below.
void populate(MetricsRegistry& reg) {
  Counter& delivered =
      reg.counter("tango_wan_delivered_total", {}, "Packets delivered to an edge switch");
  delivered.inc(128);
  Counter& drops = reg.counter("tango_wan_drops_total", {{"cause", "link-loss"}},
                               "Packets dropped in the WAN by cause");
  drops.inc(3);
  (void)reg.counter("tango_wan_drops_total", {{"cause", "no-route"}},
                    "Packets dropped in the WAN by cause");
  Gauge& pending = reg.gauge("tango_sched_pending", {}, "Events pending in the scheduler");
  pending.set(42);
  Histogram& owd = reg.histogram("tango_path_owd_us", {{"node", "la"}, {"path", "1"}},
                                 "One-way delay per path, microseconds");
  owd.record(10);  // bucket [10, 10]
  owd.record(10);
  owd.record(33);  // bucket [32, 33]
}

const char* const kGoldenPrometheus =
    "# HELP tango_wan_delivered_total Packets delivered to an edge switch\n"
    "# TYPE tango_wan_delivered_total counter\n"
    "tango_wan_delivered_total 128\n"
    "# HELP tango_wan_drops_total Packets dropped in the WAN by cause\n"
    "# TYPE tango_wan_drops_total counter\n"
    "tango_wan_drops_total{cause=\"link-loss\"} 3\n"
    "tango_wan_drops_total{cause=\"no-route\"} 0\n"
    "# HELP tango_sched_pending Events pending in the scheduler\n"
    "# TYPE tango_sched_pending gauge\n"
    "tango_sched_pending 42\n"
    "# HELP tango_path_owd_us One-way delay per path, microseconds\n"
    "# TYPE tango_path_owd_us histogram\n"
    "tango_path_owd_us_bucket{node=\"la\",path=\"1\",le=\"10\"} 2\n"
    "tango_path_owd_us_bucket{node=\"la\",path=\"1\",le=\"33\"} 3\n"
    "tango_path_owd_us_bucket{node=\"la\",path=\"1\",le=\"+Inf\"} 3\n"
    "tango_path_owd_us_sum{node=\"la\",path=\"1\"} 53\n"
    "tango_path_owd_us_count{node=\"la\",path=\"1\"} 3\n";

const char* const kGoldenJson =
    "{\n"
    "  \"metrics\": [\n"
    "    {\"name\": \"tango_wan_delivered_total\", \"kind\": \"counter\", \"labels\": {}, "
    "\"value\": 128},\n"
    "    {\"name\": \"tango_wan_drops_total\", \"kind\": \"counter\", \"labels\": "
    "{\"cause\": \"link-loss\"}, \"value\": 3},\n"
    "    {\"name\": \"tango_wan_drops_total\", \"kind\": \"counter\", \"labels\": "
    "{\"cause\": \"no-route\"}, \"value\": 0},\n"
    "    {\"name\": \"tango_sched_pending\", \"kind\": \"gauge\", \"labels\": {}, "
    "\"value\": 42},\n"
    "    {\"name\": \"tango_path_owd_us\", \"kind\": \"histogram\", \"labels\": "
    "{\"node\": \"la\", \"path\": \"1\"}, \"count\": 3, \"sum\": 53, \"max\": 33, "
    "\"mean\": 17.667, \"p50\": 10, \"p90\": 33, \"p99\": 33, "
    "\"buckets\": [{\"ge\": 10, \"count\": 2}, {\"ge\": 32, \"count\": 1}]}\n"
    "  ]\n"
    "}\n";

TEST(Exporters, PrometheusGolden) {
  MetricsRegistry reg;
  populate(reg);
  EXPECT_EQ(to_prometheus(reg), kGoldenPrometheus);
}

TEST(Exporters, JsonGolden) {
  MetricsRegistry reg;
  populate(reg);
  EXPECT_EQ(to_json(reg), kGoldenJson);
}

TEST(Exporters, EmptyRegistryExportsEmptyDocuments) {
  MetricsRegistry reg;
  EXPECT_EQ(to_prometheus(reg), "");
  EXPECT_EQ(to_json(reg), "{\n  \"metrics\": [\n  ]\n}\n");
}

TEST(Exporters, FamilyHeaderEmittedOncePerName) {
  MetricsRegistry reg;
  (void)reg.counter("tango_multi_total", {{"node", "la"}}, "multi");
  (void)reg.counter("tango_multi_total", {{"node", "ny"}}, "multi");
  const std::string text = to_prometheus(reg);
  std::size_t count = 0;
  for (std::size_t pos = text.find("# TYPE"); pos != std::string::npos;
       pos = text.find("# TYPE", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Exporters, WriteSnapshotProducesBothFiles) {
  MetricsRegistry reg;
  populate(reg);
  const std::filesystem::path stem =
      std::filesystem::temp_directory_path() / "tango_test_snapshot";
  ASSERT_TRUE(write_snapshot(reg, stem));
  auto slurp = [](const std::filesystem::path& p) {
    std::ifstream in{p};
    std::ostringstream all;
    all << in.rdbuf();
    return all.str();
  };
  std::filesystem::path prom = stem;
  prom += ".prom";
  std::filesystem::path json = stem;
  json += ".json";
  EXPECT_EQ(slurp(prom), kGoldenPrometheus);
  EXPECT_EQ(slurp(json), kGoldenJson);
  std::filesystem::remove(prom);
  std::filesystem::remove(json);
}

}  // namespace
}  // namespace tango::telemetry
