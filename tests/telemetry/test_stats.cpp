#include "telemetry/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace tango::telemetry {
namespace {

TEST(Ewma, FirstSampleInitializes) {
  Ewma e{0.1};
  EXPECT_FALSE(e.initialized());
  e.update(30.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 30.0);
}

TEST(Ewma, ConvergesTowardNewLevel) {
  Ewma e{0.1};
  e.update(30.0);
  for (int i = 0; i < 200; ++i) e.update(40.0);
  EXPECT_NEAR(e.value(), 40.0, 0.01);
}

TEST(Ewma, AlphaControlsResponsiveness) {
  Ewma fast{0.5};
  Ewma slow{0.01};
  fast.update(0.0);
  slow.update(0.0);
  fast.update(10.0);
  slow.update(10.0);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(Ewma, ResetClears) {
  Ewma e{0.1};
  e.update(5.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
  e.update(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(StreamingStats, MatchesNaiveComputation) {
  std::mt19937_64 rng{11};
  std::vector<double> values;
  StreamingStats s;
  for (int i = 0; i < 5000; ++i) {
    const double v = std::uniform_real_distribution<double>{10.0, 50.0}(rng);
    values.push_back(v);
    s.update(v);
  }
  double mean = 0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);

  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-6);
  EXPECT_EQ(s.count(), values.size());
  EXPECT_DOUBLE_EQ(s.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(s.max(), *std::max_element(values.begin(), values.end()));
}

TEST(StreamingStats, SingleSampleHasZeroVariance) {
  StreamingStats s;
  s.update(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, ResetClears) {
  StreamingStats s;
  s.update(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  s.update(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(RollingWindow, EvictsOldSamples) {
  RollingWindow w{sim::kSecond};
  w.update(0, 1.0);
  w.update(sim::kSecond / 2, 2.0);
  EXPECT_EQ(w.count(), 2u);
  w.update(sim::kSecond + 1, 3.0);  // evicts the t=0 sample
  EXPECT_EQ(w.count(), 2u);
  EXPECT_DOUBLE_EQ(*w.mean(), 2.5);
}

TEST(RollingWindow, StatsWithinWindow) {
  RollingWindow w{sim::kSecond};
  EXPECT_FALSE(w.mean().has_value());
  EXPECT_FALSE(w.stddev().has_value());
  w.update(0, 10.0);
  EXPECT_TRUE(w.mean().has_value());
  EXPECT_FALSE(w.stddev().has_value());  // needs >= 2 samples
  w.update(1, 14.0);
  EXPECT_DOUBLE_EQ(*w.mean(), 12.0);
  EXPECT_NEAR(*w.stddev(), std::sqrt(8.0), 1e-12);
  EXPECT_DOUBLE_EQ(*w.min(), 10.0);
  EXPECT_DOUBLE_EQ(*w.max(), 14.0);
}

TEST(RollingWindow, ReadsAreTimeAware) {
  // Regression: reads never evicted, so a window that stopped receiving
  // samples kept reporting its last (frozen) statistics forever.
  RollingWindow w{sim::kSecond};
  w.update(0, 10.0);
  w.update(sim::kSecond / 2, 20.0);
  ASSERT_EQ(w.count(), 2u);

  // A read at t=1.2s must evict the t=0 sample even though nothing new
  // arrived in between.
  const sim::Time later = sim::kSecond + sim::kSecond / 5;
  EXPECT_EQ(w.count(later), 1u);
  EXPECT_DOUBLE_EQ(*w.mean(later), 20.0);
  EXPECT_DOUBLE_EQ(*w.min(later), 20.0);
  EXPECT_DOUBLE_EQ(*w.max(later), 20.0);
  EXPECT_FALSE(w.stddev(later).has_value()) << "one survivor: no stddev";

  // A read far past everything drains the window entirely.
  EXPECT_EQ(w.count(5 * sim::kSecond), 0u);
  EXPECT_FALSE(w.mean(5 * sim::kSecond).has_value());
  EXPECT_FALSE(w.min(5 * sim::kSecond).has_value());
  EXPECT_FALSE(w.max(5 * sim::kSecond).has_value());
}

TEST(RollingWindow, TimeAwareReadKeepsInWindowSamples) {
  RollingWindow w{sim::kSecond};
  for (int i = 0; i < 10; ++i) w.update(i * 100 * sim::kMillisecond, 1.0 * i);
  // Read at the last update instant: everything within the window survives.
  EXPECT_EQ(w.count(900 * sim::kMillisecond), 10u);
}

TEST(RollingWindow, ClearEmpties) {
  RollingWindow w;
  w.update(0, 1.0);
  w.clear();
  EXPECT_EQ(w.count(), 0u);
}

/// Property: rolling stddev of a constant stream is zero for any window.
class ConstantStream : public ::testing::TestWithParam<sim::Time> {};

TEST_P(ConstantStream, ZeroJitter) {
  RollingWindow w{GetParam()};
  for (int i = 0; i < 1000; ++i) {
    w.update(i * sim::kMillisecond, 27.5);
  }
  ASSERT_TRUE(w.stddev().has_value());
  EXPECT_DOUBLE_EQ(*w.stddev(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Windows, ConstantStream,
                         ::testing::Values(sim::kSecond / 10, sim::kSecond, 5 * sim::kSecond));

}  // namespace
}  // namespace tango::telemetry
