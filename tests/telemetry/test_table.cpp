#include "telemetry/table.hpp"

#include <gtest/gtest.h>

namespace tango::telemetry {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t{{"Path", "Mean (ms)"}};
  t.add_row({"NTT", "36.90"});
  t.add_row({"GTT", "28.40"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Path |"), std::string::npos);
  EXPECT_NE(out.find("| NTT "), std::string::npos);
  EXPECT_NE(out.find("| GTT "), std::string::npos);
  // All lines equally wide.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(Table, RejectsWrongArity) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(27.456, 2), "27.46");
  EXPECT_EQ(fmt(27.0, 0), "27");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Chart, RendersSeries) {
  TimeSeries a{"NTT"};
  TimeSeries b{"GTT"};
  for (int i = 0; i < 100; ++i) {
    a.record(i * sim::kSecond, 36.9);
    b.record(i * sim::kSecond, 28.4);
  }
  ChartOptions opts;
  opts.width = 40;
  opts.height = 8;
  const std::string chart = render_chart({&a, &b}, opts);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("NTT"), std::string::npos);
  EXPECT_NE(chart.find("GTT"), std::string::npos);
}

TEST(Chart, HandlesDegenerateInputs) {
  EXPECT_EQ(render_chart({}, ChartOptions{}), "(no series)\n");
  TimeSeries empty{"x"};
  EXPECT_EQ(render_chart({&empty}, ChartOptions{}), "(empty series)\n");
}

}  // namespace
}  // namespace tango::telemetry
