// Control-plane checks of the Fig. 3 environment: default routes, Vultr's
// transit preference order, community-driven path exposure, and the
// allowas-in/private-ASN mechanics the paper's deployment relies on.
#include "topo/vultr_scenario.hpp"

#include <gtest/gtest.h>

namespace tango::topo {
namespace {

using namespace vultr;

class VultrScenarioTest : public ::testing::Test {
 protected:
  VultrScenarioTest() : s_{make_vultr_scenario()} {}

  VultrScenario s_;
};

TEST_F(VultrScenarioTest, HostPrefixesAreGloballyReachable) {
  const net::Prefix la{s_.plan.la_hosts};
  const net::Prefix ny{s_.plan.ny_hosts};
  for (bgp::RouterId id : {kNtt, kTelia, kGtt, kCogent, kLevel3, kVultrLa, kVultrNy,
                           kServerLa, kServerNy}) {
    if (id != kServerLa) {
      EXPECT_NE(s_.topo.bgp().best_route(id, la), nullptr) << id;
    }
    if (id != kServerNy) {
      EXPECT_NE(s_.topo.bgp().best_route(id, ny), nullptr) << id;
    }
  }
}

TEST_F(VultrScenarioTest, PrivateAsnsAreStrippedAtVultr) {
  const bgp::Route* at_ntt = s_.topo.bgp().best_route(kNtt, net::Prefix{s_.plan.ny_hosts});
  ASSERT_NE(at_ntt, nullptr);
  EXPECT_EQ(at_ntt->as_path, (bgp::AsPath{20473}))
      << "NTT must see Vultr as origin, not the tenant's private ASN";
}

TEST_F(VultrScenarioTest, DefaultPathIsNttBothDirections) {
  // "in order of preference by Vultr's routers: (i) NTT" (§4.1).
  const bgp::Route* la_view = s_.topo.bgp().best_route(kServerLa, net::Prefix{s_.plan.ny_hosts});
  ASSERT_NE(la_view, nullptr);
  EXPECT_EQ(la_view->as_path, (bgp::AsPath{20473, 2914, 20473}));

  const bgp::Route* ny_view = s_.topo.bgp().best_route(kServerNy, net::Prefix{s_.plan.la_hosts});
  ASSERT_NE(ny_view, nullptr);
  EXPECT_EQ(ny_view->as_path, (bgp::AsPath{20473, 2914, 20473}));
}

TEST_F(VultrScenarioTest, ForwardingPathMatchesControlPlane) {
  EXPECT_EQ(s_.topo.bgp().forwarding_path(kServerLa, net::Prefix{s_.plan.ny_hosts}),
            (std::vector<bgp::RouterId>{kServerLa, kVultrLa, kNtt, kVultrNy, kServerNy}));
}

TEST_F(VultrScenarioTest, SuppressionWalksThePreferenceOrder) {
  // Re-originate the NY host prefix with ever-larger suppression sets; the
  // LA view must walk NTT -> Telia -> GTT -> Cogent -> unreachable.
  const net::Prefix ny{s_.plan.ny_hosts};
  bgp::CommunitySet set;

  struct Expect {
    bgp::Asn suppress_next;
    bgp::AsPath expected;
  };
  const Expect sequence[] = {
      {kAsnNtt, bgp::AsPath{20473, 2914, 20473}},
      {kAsnTelia, bgp::AsPath{20473, 1299, 20473}},
      {kAsnGtt, bgp::AsPath{20473, 3257, 20473}},
      {kAsnCogent, bgp::AsPath{20473, 2914, 174, 20473}},  // "NTT and Cogent"
  };

  for (const Expect& step : sequence) {
    s_.topo.bgp().originate(kServerNy, ny, set);
    const bgp::Route* seen = s_.topo.bgp().best_route(kServerLa, ny);
    ASSERT_NE(seen, nullptr);
    EXPECT_EQ(seen->as_path, step.expected);
    set.add(bgp::action::do_not_announce_to(step.suppress_next));
  }

  // All four suppressed: unreachable from LA.
  s_.topo.bgp().originate(kServerNy, ny, set);
  EXPECT_EQ(s_.topo.bgp().best_route(kServerLa, ny), nullptr);
}

TEST_F(VultrScenarioTest, ReverseDirectionFourthPathIsLevel3) {
  const net::Prefix la{s_.plan.la_hosts};
  bgp::CommunitySet set{bgp::action::do_not_announce_to(kAsnNtt),
                        bgp::action::do_not_announce_to(kAsnTelia),
                        bgp::action::do_not_announce_to(kAsnGtt)};
  s_.topo.bgp().originate(kServerLa, la, set);
  const bgp::Route* seen = s_.topo.bgp().best_route(kServerNy, la);
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen->as_path, (bgp::AsPath{20473, 2914, 3356, 20473}))
      << "LA's fourth exit is Level3, reached via NY's default transit NTT";
}

TEST_F(VultrScenarioTest, TunnelPrefixOriginationAllRideDefault) {
  originate_tunnel_prefixes(s_);
  for (const auto& p : s_.plan.ny_tunnel) {
    const bgp::Route* seen = s_.topo.bgp().best_route(kServerLa, net::Prefix{p});
    ASSERT_NE(seen, nullptr) << p.to_string();
    EXPECT_EQ(seen->as_path, (bgp::AsPath{20473, 2914, 20473}));
  }
}

TEST_F(VultrScenarioTest, BackboneEdgeLookupValidates) {
  EXPECT_EQ(VultrScenario::backbone_to_la(kAsnGtt), (LinkKey{kGtt, kVultrLa}));
  EXPECT_EQ(VultrScenario::backbone_to_ny(kAsnCogent), (LinkKey{kCogent, kVultrNy}));
  EXPECT_THROW((void)VultrScenario::backbone_to_la(kAsnCogent), std::invalid_argument);
  EXPECT_THROW((void)VultrScenario::backbone_to_ny(kAsnLevel3), std::invalid_argument);
}

TEST_F(VultrScenarioTest, AddressPlanIsDisjoint) {
  std::vector<net::Ipv6Prefix> all;
  for (const auto& p : s_.plan.la_tunnel) all.push_back(p);
  for (const auto& p : s_.plan.ny_tunnel) all.push_back(p);
  all.push_back(s_.plan.la_hosts);
  all.push_back(s_.plan.ny_hosts);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(all[i].overlaps(all[j]))
          << all[i].to_string() << " overlaps " << all[j].to_string();
    }
  }
}

}  // namespace
}  // namespace tango::topo
