// The synthetic AS-mesh generator: deterministic wiring, full reachability
// under Gao–Rexford policies, parameter validation, and batched-delivery
// equivalence at mesh scale.
#include "topo/mesh_gen.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/wan.hpp"

namespace tango::topo {
namespace {

MeshParams tiny_mesh() {
  MeshParams params;
  params.tier1 = 3;
  params.tier2 = 6;
  params.stubs = 20;
  params.prefixes_per_stub = 2;
  params.providers_per_tier2 = 2;
  params.providers_per_stub = 2;
  params.seed = 7;
  return params;
}

std::uint64_t converge_and_digest(Topology& topo) {
  topo.bgp().set_message_limit(50'000'000);
  topo.bgp().run_to_convergence();
  sim::Wan wan{topo, sim::Rng{1}};
  return wan.fib_digest();
}

TEST(MeshGen, BuildsRequestedShape) {
  Topology topo;
  const MeshParams params = tiny_mesh();
  const Mesh mesh = generate_mesh(topo, params);
  EXPECT_EQ(mesh.tier1.size(), params.tier1);
  EXPECT_EQ(mesh.tier2.size(), params.tier2);
  EXPECT_EQ(mesh.stubs.size(), params.stubs);
  EXPECT_EQ(mesh.routers(), params.tier1 + params.tier2 + params.stubs);
  EXPECT_EQ(mesh.originations.size(),
            static_cast<std::size_t>(params.stubs) * params.prefixes_per_stub);
  EXPECT_EQ(topo.bgp().routers().size(), mesh.routers());
  // Tier-1 routers form a transit-free clique.
  for (bgp::RouterId a : mesh.tier1) {
    for (bgp::RouterId b : mesh.tier1) {
      if (a != b) {
        EXPECT_TRUE(topo.bgp().router(a).has_session(b));
      }
    }
  }
  // Every directed session has a link profile for the data plane.
  for (const LinkKey& key : topo.links()) {
    EXPECT_NE(topo.profile(key.from, key.to), nullptr);
  }
}

TEST(MeshGen, SameSeedBuildsIdenticalControlPlanes) {
  Topology a;
  Topology b;
  const Mesh mesh_a = generate_mesh(a, tiny_mesh());
  const Mesh mesh_b = generate_mesh(b, tiny_mesh());
  EXPECT_EQ(mesh_a.tier1, mesh_b.tier1);
  EXPECT_EQ(mesh_a.stubs, mesh_b.stubs);
  EXPECT_EQ(mesh_a.originations, mesh_b.originations);
  // Converged forwarding state is byte-identical: equal FIB digests.
  EXPECT_EQ(converge_and_digest(a), converge_and_digest(b));
}

TEST(MeshGen, DifferentSeedsBuildDifferentWiring) {
  Topology a;
  Topology b;
  MeshParams params = tiny_mesh();
  generate_mesh(a, params);
  params.seed = 8;
  generate_mesh(b, params);
  EXPECT_NE(converge_and_digest(a), converge_and_digest(b));
}

TEST(MeshGen, EveryRouterReachesEveryPrefix) {
  Topology topo;
  const MeshParams params = tiny_mesh();
  const Mesh mesh = generate_mesh(topo, params);
  topo.bgp().set_message_limit(50'000'000);
  topo.bgp().run_to_convergence();
  const std::size_t total =
      static_cast<std::size_t>(params.stubs) * params.prefixes_per_stub;
  for (bgp::RouterId id : topo.bgp().routers()) {
    EXPECT_EQ(topo.bgp().router(id).loc_rib().size(), total)
        << topo.router_name(id) << " is missing routes";
  }
}

TEST(MeshGen, RejectsDegenerateParams) {
  Topology topo;
  MeshParams params = tiny_mesh();
  params.tier1 = 0;
  EXPECT_THROW(generate_mesh(topo, params), std::invalid_argument);
  params = tiny_mesh();
  params.providers_per_tier2 = params.tier1 + 1;
  EXPECT_THROW(generate_mesh(topo, params), std::invalid_argument);
  params = tiny_mesh();
  params.providers_per_stub = 0;
  EXPECT_THROW(generate_mesh(topo, params), std::invalid_argument);
  params = tiny_mesh();
  params.stubs = 300;
  params.prefixes_per_stub = 300;  // 90000 prefixes > the 10/8-of-/24s space
  EXPECT_THROW(generate_mesh(topo, params), std::invalid_argument);
}

// Batched delivery must converge to the identical forwarding state while
// moving no more messages than unbatched delivery (the coalescing win the
// mesh bench relies on).
TEST(MeshGen, BatchedDeliveryMatchesUnbatched) {
  Topology plain;
  Topology batched;
  generate_mesh(plain, tiny_mesh());
  generate_mesh(batched, tiny_mesh());
  batched.bgp().set_batched_delivery(true);

  plain.bgp().set_message_limit(50'000'000);
  batched.bgp().set_message_limit(50'000'000);
  plain.bgp().run_to_convergence();
  batched.bgp().run_to_convergence();
  EXPECT_LE(batched.bgp().total_messages(), plain.bgp().total_messages());

  sim::Wan plain_wan{plain, sim::Rng{1}};
  sim::Wan batched_wan{batched, sim::Rng{1}};
  EXPECT_EQ(plain_wan.fib_digest(), batched_wan.fib_digest());
}

}  // namespace
}  // namespace tango::topo
