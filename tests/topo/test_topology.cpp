#include "topo/topology.hpp"

#include <gtest/gtest.h>

namespace tango::topo {
namespace {

TEST(Topology, NamesAndProfiles) {
  Topology t;
  t.add_router(1, 2914, "NTT");
  t.add_router(2, 20473, "Vultr-LA");
  t.name_asn(2914, "NTT");

  EXPECT_EQ(t.router_name(1), "NTT");
  EXPECT_EQ(t.router_name(99), "r99");
  EXPECT_EQ(t.asn_name(2914), "NTT");
  EXPECT_EQ(t.asn_name(174), "AS174");

  LinkProfile up{.base_delay_ms = 0.5};
  LinkProfile down{.base_delay_ms = 36.0};
  t.add_transit(1, 2, up, down);

  const LinkProfile* p = t.profile(2, 1);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->base_delay_ms, 0.5);
  p = t.profile(1, 2);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->base_delay_ms, 36.0);
  EXPECT_EQ(t.profile(1, 99), nullptr);
  EXPECT_EQ(t.links().size(), 2u);
}

TEST(Topology, SetProfileReplaces) {
  Topology t;
  t.add_router(1, 100, "a");
  t.add_router(2, 200, "b");
  t.add_peering(1, 2, LinkProfile{.base_delay_ms = 1.0}, LinkProfile{.base_delay_ms = 2.0});
  t.set_profile(1, 2, LinkProfile{.base_delay_ms = 9.0});
  EXPECT_DOUBLE_EQ(t.profile(1, 2)->base_delay_ms, 9.0);
  EXPECT_DOUBLE_EQ(t.profile(2, 1)->base_delay_ms, 2.0);
}

TEST(Topology, LabelPathSkipsEndpointAsns) {
  Topology t;
  t.name_asn(2914, "NTT");
  t.name_asn(174, "Cogent");
  const std::vector<bgp::Asn> endpoints{20473, 64512, 64513};

  EXPECT_EQ(t.label_path({20473, 2914, 20473}, endpoints), "NTT");
  EXPECT_EQ(t.label_path({20473, 2914, 174, 20473}, endpoints), "NTT Cogent");
  EXPECT_EQ(t.label_path({20473, 20473}, endpoints), "direct");
  // Unnamed ASNs fall back to AS-number labels.
  EXPECT_EQ(t.label_path({20473, 3356, 20473}, endpoints), "AS3356");
}

TEST(Topology, BgpIsLive) {
  Topology t;
  t.add_router(1, 100, "provider");
  t.add_router(2, 200, "customer");
  t.add_transit(1, 2, LinkProfile{}, LinkProfile{});
  t.bgp().originate(2, *net::Prefix::parse("2001:db8::/32"));
  EXPECT_NE(t.bgp().best_route(1, *net::Prefix::parse("2001:db8::/32")), nullptr);
}

}  // namespace
}  // namespace tango::topo
