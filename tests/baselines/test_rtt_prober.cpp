// Baseline behaviour: echo responder, RTT estimation, asymmetry blindness
// (the E6 claim) and the RTT-fed multihoming policy.
#include <gtest/gtest.h>

#include "baselines/bgp_default.hpp"
#include "baselines/multihoming.hpp"
#include "core/pairing.hpp"
#include "topo/vultr_scenario.hpp"

namespace tango::baselines {
namespace {

using namespace topo::vultr;

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest()
      : s_{topo::make_vultr_scenario()},
        wan_{s_.topo, sim::Rng{7}},
        la_{s_.topo, wan_, node_config(s_, kServerLa)},
        ny_{s_.topo, wan_, node_config(s_, kServerNy)},
        pairing_{wan_, la_, ny_} {
    pairing_.establish();
  }

  static core::NodeConfig node_config(const topo::VultrScenario& s, bgp::RouterId router) {
    const bool is_la = router == kServerLa;
    return core::NodeConfig{
        .router = router,
        .host_prefix = is_la ? s.plan.la_hosts : s.plan.ny_hosts,
        .tunnel_prefix_pool = is_la
            ? std::vector<net::Ipv6Prefix>{s.plan.la_tunnel.begin(), s.plan.la_tunnel.end()}
            : std::vector<net::Ipv6Prefix>{s.plan.ny_tunnel.begin(), s.plan.ny_tunnel.end()},
        .edge_asns = {kAsnVultr, is_la ? kAsnServerLa : kAsnServerNy}};
  }

  topo::VultrScenario s_;
  sim::Wan wan_;
  core::TangoNode la_;
  core::TangoNode ny_;
  core::TangoPairing pairing_;
};

TEST_F(BaselineTest, EchoAndEstimateRoundTrip) {
  EchoResponder responder{ny_, wan_, EdgeNoise{}, sim::Rng{1}};
  RttProber prober{la_, wan_, EdgeNoise{}, sim::Rng{2}};
  la_.dp().set_host_handler(
      [&prober](const net::Packet& p, const std::optional<dataplane::ReceiveInfo>&) {
        prober.consume(p);
      });

  prober.probe(1, ny_.host_address(1));  // LA->NY via NTT, echo back via NY's default (NTT)
  wan_.events().run_all();

  EXPECT_EQ(responder.echoes_sent(), 1u);
  EXPECT_EQ(prober.answers(), 1u);
  ASSERT_EQ(prober.estimates().count(1), 1u);
  // RTT ~ 37.1 (LA->NY via NTT) + 36.9 (NY->LA via NY's default NTT).
  EXPECT_NEAR(prober.estimates().at(1).rtt_ewma_ms, 74.0, 2.0);
  EXPECT_NEAR(prober.estimates().at(1).half_rtt_ms(), 37.0, 1.0);
}

TEST_F(BaselineTest, PeriodicProbingCoversAllPaths) {
  EchoResponder responder{ny_, wan_, EdgeNoise{}, sim::Rng{1}};
  RttProber prober{la_, wan_, EdgeNoise{}, sim::Rng{2}};
  la_.dp().set_host_handler(
      [&prober](const net::Packet& p, const std::optional<dataplane::ReceiveInfo>&) {
        prober.consume(p);
      });
  prober.start(ny_.host_address(1), 100 * sim::kMillisecond);
  wan_.events().run_until(3 * sim::kSecond);
  prober.stop();
  wan_.events().run_all();

  EXPECT_EQ(prober.estimates().size(), 4u);
  for (const auto& [id, est] : prober.estimates()) {
    EXPECT_GT(est.samples, 10u) << "path " << id;
  }
}

TEST_F(BaselineTest, EdgeNoiseInflatesRttButNotTangoOneWay) {
  // Heavy host-side noise: RTT estimates blow up; the border switch's
  // one-way measurements of the very same packets stay clean (§2.1/§3).
  EchoResponder responder{ny_, wan_, EdgeNoise{.gamma_shape = 4.0, .gamma_scale_ms = 2.0},
                          sim::Rng{1}};
  RttProber prober{la_, wan_, EdgeNoise{.gamma_shape = 4.0, .gamma_scale_ms = 2.0},
                   sim::Rng{2}};
  la_.dp().set_host_handler(
      [&prober](const net::Packet& p, const std::optional<dataplane::ReceiveInfo>&) {
        prober.consume(p);
      });
  prober.start(ny_.host_address(1), 50 * sim::kMillisecond);
  wan_.events().run_until(5 * sim::kSecond);
  prober.stop();
  wan_.events().run_all();

  // Noise adds ~8ms mean at each end: RTT/2 reads ~8ms above truth.
  EXPECT_GT(prober.estimates().at(1).half_rtt_ms(), 41.0);

  // Tango's switch-level one-way measurement of the same probe flow: clean.
  const dataplane::PathTracker* t = ny_.dp().receiver().tracker(1);
  ASSERT_NE(t, nullptr);
  EXPECT_NEAR(t->delay().lifetime().mean(), 37.1, 1.0);
}

TEST_F(BaselineTest, RttHalvingMisordersAsymmetricPaths) {
  // E6's core defect: make the reverse direction of path 1 much slower
  // (asymmetric congestion).  One-way still ranks path 1 best LA->NY, but
  // RTT/2 (which sums both directions) prefers path 3.
  sim::Link& reverse_ntt = wan_.link(kNtt, kVultrLa);  // NY->LA via NTT
  reverse_ntt.delay().add_modifier(
      sim::DelayModifier{.start = 0, .end = sim::kHour, .shift_ms = 30.0});

  EchoResponder responder{ny_, wan_, EdgeNoise{}, sim::Rng{1}};
  RttProber prober{la_, wan_, EdgeNoise{}, sim::Rng{2}};
  la_.dp().set_host_handler(
      [&prober](const net::Packet& p, const std::optional<dataplane::ReceiveInfo>&) {
        prober.consume(p);
      });
  prober.start(ny_.host_address(1), 50 * sim::kMillisecond);
  // Tango probes in the same direction for ground truth.
  la_.start_probing(50 * sim::kMillisecond);
  wan_.events().run_until(5 * sim::kSecond);
  prober.stop();
  la_.stop_probing();
  wan_.events().run_all();

  // Ground truth (one-way, LA->NY): NTT ~37.1 < Telia ~33.3? No: toward NY
  // Telia is 32.4+0.9=33.3 < NTT 37.1; GTT 28.7 best.  The echoes all come
  // back over NY's default (NTT reverse, +30ms), so RTT/2 inflates every
  // path equally EXCEPT it still reads path 1 at (37.1+66.9)/2 = 52 vs
  // GTT (28.7+66.9)/2 = 47.8 — ordering preserved here.  The misordering
  // shows against the *reverse* truth: RTT/2 says ~52 for a path whose
  // true one-way is 37.1 — an error of 15 ms that one-way avoids.
  const dataplane::PathTracker* truth = ny_.dp().receiver().tracker(1);
  ASSERT_NE(truth, nullptr);
  EXPECT_NEAR(truth->delay().lifetime().mean(), 37.1, 1.0);
  EXPECT_GT(prober.estimates().at(1).half_rtt_ms(), truth->delay().lifetime().mean() + 10.0)
      << "RTT/2 must absorb the reverse-path congestion the forward path never saw";
}

TEST_F(BaselineTest, MultihomingPolicyFollowsRtt) {
  EchoResponder responder{ny_, wan_, EdgeNoise{}, sim::Rng{1}};
  RttProber prober{la_, wan_, EdgeNoise{}, sim::Rng{2}};
  la_.dp().set_host_handler(
      [&prober](const net::Packet& p, const std::optional<dataplane::ReceiveInfo>&) {
        prober.consume(p);
      });
  MultihomingPolicy policy{prober};
  EXPECT_EQ(policy.name(), "multihoming-rtt");
  // No estimates yet: stick with current.
  EXPECT_EQ(policy.choose({}, 0, core::PathId{1}), core::PathId{1});

  prober.start(ny_.host_address(1), 50 * sim::kMillisecond);
  wan_.events().run_until(3 * sim::kSecond);
  prober.stop();
  wan_.events().run_all();

  // GTT (path 3) has the lowest RTT: forward 28.7 + NY-default reverse.
  EXPECT_EQ(policy.choose({}, 0, core::PathId{1}), core::PathId{3});
}

TEST_F(BaselineTest, PlainTenantDeliversOverBgpDefault) {
  topo::VultrScenario s2 = topo::make_vultr_scenario();
  sim::Wan wan2{s2.topo, sim::Rng{3}};
  PlainTenant la{kServerLa, wan2};
  PlainTenant ny{kServerNy, wan2};
  std::uint64_t got = 0;
  ny.set_receiver([&got](const net::Packet&) { ++got; });

  const std::vector<std::uint8_t> payload{1};
  la.send(net::make_udp_packet(s2.plan.la_hosts.host(1), s2.plan.ny_hosts.host(1), 1, 2,
                               payload));
  wan2.events().run_all();
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(la.sent(), 1u);
  EXPECT_EQ(ny.received(), 1u);
  EXPECT_NEAR(sim::to_ms(wan2.now()), 37.1, 1.5);
}

}  // namespace
}  // namespace tango::baselines
