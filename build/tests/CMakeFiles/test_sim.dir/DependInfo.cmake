
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_clock.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_clock.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_clock.cpp.o.d"
  "/root/repo/tests/sim/test_delay_models.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_delay_models.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_delay_models.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_loss_models.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_loss_models.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_loss_models.cpp.o.d"
  "/root/repo/tests/sim/test_wan.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_wan.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_wan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_dataplane.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
