file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_bird.cpp.o"
  "CMakeFiles/test_core.dir/core/test_bird.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_config.cpp.o"
  "CMakeFiles/test_core.dir/core/test_config.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_discovery.cpp.o"
  "CMakeFiles/test_core.dir/core/test_discovery.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_discovery_random.cpp.o"
  "CMakeFiles/test_core.dir/core/test_discovery_random.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_failure_injection.cpp.o"
  "CMakeFiles/test_core.dir/core/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_integration.cpp.o"
  "CMakeFiles/test_core.dir/core/test_integration.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ipv4_hosts.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ipv4_hosts.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mesh.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mesh.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_poisoning.cpp.o"
  "CMakeFiles/test_core.dir/core/test_poisoning.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_policies.cpp.o"
  "CMakeFiles/test_core.dir/core/test_policies.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
