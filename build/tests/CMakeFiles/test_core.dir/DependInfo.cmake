
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_bird.cpp" "tests/CMakeFiles/test_core.dir/core/test_bird.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_bird.cpp.o.d"
  "/root/repo/tests/core/test_config.cpp" "tests/CMakeFiles/test_core.dir/core/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_config.cpp.o.d"
  "/root/repo/tests/core/test_discovery.cpp" "tests/CMakeFiles/test_core.dir/core/test_discovery.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_discovery.cpp.o.d"
  "/root/repo/tests/core/test_discovery_random.cpp" "tests/CMakeFiles/test_core.dir/core/test_discovery_random.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_discovery_random.cpp.o.d"
  "/root/repo/tests/core/test_failure_injection.cpp" "tests/CMakeFiles/test_core.dir/core/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_failure_injection.cpp.o.d"
  "/root/repo/tests/core/test_integration.cpp" "tests/CMakeFiles/test_core.dir/core/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_integration.cpp.o.d"
  "/root/repo/tests/core/test_ipv4_hosts.cpp" "tests/CMakeFiles/test_core.dir/core/test_ipv4_hosts.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ipv4_hosts.cpp.o.d"
  "/root/repo/tests/core/test_mesh.cpp" "tests/CMakeFiles/test_core.dir/core/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mesh.cpp.o.d"
  "/root/repo/tests/core/test_poisoning.cpp" "tests/CMakeFiles/test_core.dir/core/test_poisoning.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_poisoning.cpp.o.d"
  "/root/repo/tests/core/test_policies.cpp" "tests/CMakeFiles/test_core.dir/core/test_policies.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_dataplane.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
