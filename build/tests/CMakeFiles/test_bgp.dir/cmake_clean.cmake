file(REMOVE_RECURSE
  "CMakeFiles/test_bgp.dir/bgp/test_as_path.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_as_path.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_community.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_community.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_convergence.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_convergence.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_decision.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_decision.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_policy.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_policy.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_speaker_network.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_speaker_network.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_wire.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_wire.cpp.o.d"
  "test_bgp"
  "test_bgp.pdb"
  "test_bgp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
