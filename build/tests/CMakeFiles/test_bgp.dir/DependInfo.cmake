
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bgp/test_as_path.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/test_as_path.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/test_as_path.cpp.o.d"
  "/root/repo/tests/bgp/test_community.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/test_community.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/test_community.cpp.o.d"
  "/root/repo/tests/bgp/test_convergence.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/test_convergence.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/test_convergence.cpp.o.d"
  "/root/repo/tests/bgp/test_decision.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/test_decision.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/test_decision.cpp.o.d"
  "/root/repo/tests/bgp/test_policy.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/test_policy.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/test_policy.cpp.o.d"
  "/root/repo/tests/bgp/test_speaker_network.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/test_speaker_network.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/test_speaker_network.cpp.o.d"
  "/root/repo/tests/bgp/test_wire.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/test_wire.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/test_wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_dataplane.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
