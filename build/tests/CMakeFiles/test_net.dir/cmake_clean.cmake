file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_checksum.cpp.o"
  "CMakeFiles/test_net.dir/net/test_checksum.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_ip_address.cpp.o"
  "CMakeFiles/test_net.dir/net/test_ip_address.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_ipv4.cpp.o"
  "CMakeFiles/test_net.dir/net/test_ipv4.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_packet.cpp.o"
  "CMakeFiles/test_net.dir/net/test_packet.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_prefix.cpp.o"
  "CMakeFiles/test_net.dir/net/test_prefix.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_prefix_trie.cpp.o"
  "CMakeFiles/test_net.dir/net/test_prefix_trie.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_siphash.cpp.o"
  "CMakeFiles/test_net.dir/net/test_siphash.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
