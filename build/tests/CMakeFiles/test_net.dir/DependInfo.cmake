
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_checksum.cpp" "tests/CMakeFiles/test_net.dir/net/test_checksum.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_checksum.cpp.o.d"
  "/root/repo/tests/net/test_ip_address.cpp" "tests/CMakeFiles/test_net.dir/net/test_ip_address.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_ip_address.cpp.o.d"
  "/root/repo/tests/net/test_ipv4.cpp" "tests/CMakeFiles/test_net.dir/net/test_ipv4.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_ipv4.cpp.o.d"
  "/root/repo/tests/net/test_packet.cpp" "tests/CMakeFiles/test_net.dir/net/test_packet.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_packet.cpp.o.d"
  "/root/repo/tests/net/test_prefix.cpp" "tests/CMakeFiles/test_net.dir/net/test_prefix.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_prefix.cpp.o.d"
  "/root/repo/tests/net/test_prefix_trie.cpp" "tests/CMakeFiles/test_net.dir/net/test_prefix_trie.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_prefix_trie.cpp.o.d"
  "/root/repo/tests/net/test_siphash.cpp" "tests/CMakeFiles/test_net.dir/net/test_siphash.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_siphash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_dataplane.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
