file(REMOVE_RECURSE
  "CMakeFiles/test_dataplane.dir/dataplane/test_auth.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_auth.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/test_encap.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_encap.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/test_pcap.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_pcap.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/test_switch.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_switch.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/test_trackers.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_trackers.cpp.o.d"
  "test_dataplane"
  "test_dataplane.pdb"
  "test_dataplane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
