# Empty compiler generated dependencies file for bench_fig3_discovery.
# This may be replaced when dependencies are built.
