file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_discovery.dir/bench_fig3_discovery.cpp.o"
  "CMakeFiles/bench_fig3_discovery.dir/bench_fig3_discovery.cpp.o.d"
  "bench_fig3_discovery"
  "bench_fig3_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
