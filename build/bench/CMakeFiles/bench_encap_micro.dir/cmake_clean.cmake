file(REMOVE_RECURSE
  "CMakeFiles/bench_encap_micro.dir/bench_encap_micro.cpp.o"
  "CMakeFiles/bench_encap_micro.dir/bench_encap_micro.cpp.o.d"
  "bench_encap_micro"
  "bench_encap_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encap_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
