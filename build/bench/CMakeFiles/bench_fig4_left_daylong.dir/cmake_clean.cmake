file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_left_daylong.dir/bench_fig4_left_daylong.cpp.o"
  "CMakeFiles/bench_fig4_left_daylong.dir/bench_fig4_left_daylong.cpp.o.d"
  "bench_fig4_left_daylong"
  "bench_fig4_left_daylong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_left_daylong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
