# Empty compiler generated dependencies file for bench_fig4_left_daylong.
# This may be replaced when dependencies are built.
