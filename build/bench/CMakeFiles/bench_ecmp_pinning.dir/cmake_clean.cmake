file(REMOVE_RECURSE
  "CMakeFiles/bench_ecmp_pinning.dir/bench_ecmp_pinning.cpp.o"
  "CMakeFiles/bench_ecmp_pinning.dir/bench_ecmp_pinning.cpp.o.d"
  "bench_ecmp_pinning"
  "bench_ecmp_pinning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecmp_pinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
