# Empty dependencies file for bench_ecmp_pinning.
# This may be replaced when dependencies are built.
