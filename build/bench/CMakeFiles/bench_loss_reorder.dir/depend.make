# Empty dependencies file for bench_loss_reorder.
# This may be replaced when dependencies are built.
