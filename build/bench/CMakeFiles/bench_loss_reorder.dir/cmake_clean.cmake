file(REMOVE_RECURSE
  "CMakeFiles/bench_loss_reorder.dir/bench_loss_reorder.cpp.o"
  "CMakeFiles/bench_loss_reorder.dir/bench_loss_reorder.cpp.o.d"
  "bench_loss_reorder"
  "bench_loss_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loss_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
