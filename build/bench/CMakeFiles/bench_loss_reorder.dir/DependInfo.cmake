
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_loss_reorder.cpp" "bench/CMakeFiles/bench_loss_reorder.dir/bench_loss_reorder.cpp.o" "gcc" "bench/CMakeFiles/bench_loss_reorder.dir/bench_loss_reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_dataplane.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
