file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_middle_routechange.dir/bench_fig4_middle_routechange.cpp.o"
  "CMakeFiles/bench_fig4_middle_routechange.dir/bench_fig4_middle_routechange.cpp.o.d"
  "bench_fig4_middle_routechange"
  "bench_fig4_middle_routechange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_middle_routechange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
