# Empty dependencies file for bench_fig4_middle_routechange.
# This may be replaced when dependencies are built.
