file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_right_instability.dir/bench_fig4_right_instability.cpp.o"
  "CMakeFiles/bench_fig4_right_instability.dir/bench_fig4_right_instability.cpp.o.d"
  "bench_fig4_right_instability"
  "bench_fig4_right_instability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_right_instability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
