# Empty compiler generated dependencies file for bench_fig4_right_instability.
# This may be replaced when dependencies are built.
