# Empty dependencies file for bench_jitter_table.
# This may be replaced when dependencies are built.
