file(REMOVE_RECURSE
  "CMakeFiles/bench_jitter_table.dir/bench_jitter_table.cpp.o"
  "CMakeFiles/bench_jitter_table.dir/bench_jitter_table.cpp.o.d"
  "bench_jitter_table"
  "bench_jitter_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jitter_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
