# Empty compiler generated dependencies file for bench_oneway_vs_rtt.
# This may be replaced when dependencies are built.
