file(REMOVE_RECURSE
  "CMakeFiles/mesh_overlay.dir/mesh_overlay.cpp.o"
  "CMakeFiles/mesh_overlay.dir/mesh_overlay.cpp.o.d"
  "mesh_overlay"
  "mesh_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
