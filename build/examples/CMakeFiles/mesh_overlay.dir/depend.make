# Empty dependencies file for mesh_overlay.
# This may be replaced when dependencies are built.
