file(REMOVE_RECURSE
  "CMakeFiles/deployment_artifacts.dir/deployment_artifacts.cpp.o"
  "CMakeFiles/deployment_artifacts.dir/deployment_artifacts.cpp.o.d"
  "deployment_artifacts"
  "deployment_artifacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_artifacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
