# Empty compiler generated dependencies file for deployment_artifacts.
# This may be replaced when dependencies are built.
