file(REMOVE_RECURSE
  "CMakeFiles/drone_control.dir/drone_control.cpp.o"
  "CMakeFiles/drone_control.dir/drone_control.cpp.o.d"
  "drone_control"
  "drone_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drone_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
