# Empty compiler generated dependencies file for drone_control.
# This may be replaced when dependencies are built.
