# Empty compiler generated dependencies file for tango_telemetry.
# This may be replaced when dependencies are built.
