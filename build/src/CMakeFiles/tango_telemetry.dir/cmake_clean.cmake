file(REMOVE_RECURSE
  "CMakeFiles/tango_telemetry.dir/telemetry/stats.cpp.o"
  "CMakeFiles/tango_telemetry.dir/telemetry/stats.cpp.o.d"
  "CMakeFiles/tango_telemetry.dir/telemetry/table.cpp.o"
  "CMakeFiles/tango_telemetry.dir/telemetry/table.cpp.o.d"
  "CMakeFiles/tango_telemetry.dir/telemetry/timeseries.cpp.o"
  "CMakeFiles/tango_telemetry.dir/telemetry/timeseries.cpp.o.d"
  "libtango_telemetry.a"
  "libtango_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
