file(REMOVE_RECURSE
  "libtango_telemetry.a"
)
