
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/stats.cpp" "src/CMakeFiles/tango_telemetry.dir/telemetry/stats.cpp.o" "gcc" "src/CMakeFiles/tango_telemetry.dir/telemetry/stats.cpp.o.d"
  "/root/repo/src/telemetry/table.cpp" "src/CMakeFiles/tango_telemetry.dir/telemetry/table.cpp.o" "gcc" "src/CMakeFiles/tango_telemetry.dir/telemetry/table.cpp.o.d"
  "/root/repo/src/telemetry/timeseries.cpp" "src/CMakeFiles/tango_telemetry.dir/telemetry/timeseries.cpp.o" "gcc" "src/CMakeFiles/tango_telemetry.dir/telemetry/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
