file(REMOVE_RECURSE
  "libtango_dataplane.a"
)
