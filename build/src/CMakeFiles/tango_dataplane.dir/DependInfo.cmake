
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/encap.cpp" "src/CMakeFiles/tango_dataplane.dir/dataplane/encap.cpp.o" "gcc" "src/CMakeFiles/tango_dataplane.dir/dataplane/encap.cpp.o.d"
  "/root/repo/src/dataplane/pcap.cpp" "src/CMakeFiles/tango_dataplane.dir/dataplane/pcap.cpp.o" "gcc" "src/CMakeFiles/tango_dataplane.dir/dataplane/pcap.cpp.o.d"
  "/root/repo/src/dataplane/switch.cpp" "src/CMakeFiles/tango_dataplane.dir/dataplane/switch.cpp.o" "gcc" "src/CMakeFiles/tango_dataplane.dir/dataplane/switch.cpp.o.d"
  "/root/repo/src/dataplane/trackers.cpp" "src/CMakeFiles/tango_dataplane.dir/dataplane/trackers.cpp.o" "gcc" "src/CMakeFiles/tango_dataplane.dir/dataplane/trackers.cpp.o.d"
  "/root/repo/src/dataplane/tunnel_table.cpp" "src/CMakeFiles/tango_dataplane.dir/dataplane/tunnel_table.cpp.o" "gcc" "src/CMakeFiles/tango_dataplane.dir/dataplane/tunnel_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_bgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
