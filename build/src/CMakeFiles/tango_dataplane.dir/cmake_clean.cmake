file(REMOVE_RECURSE
  "CMakeFiles/tango_dataplane.dir/dataplane/encap.cpp.o"
  "CMakeFiles/tango_dataplane.dir/dataplane/encap.cpp.o.d"
  "CMakeFiles/tango_dataplane.dir/dataplane/pcap.cpp.o"
  "CMakeFiles/tango_dataplane.dir/dataplane/pcap.cpp.o.d"
  "CMakeFiles/tango_dataplane.dir/dataplane/switch.cpp.o"
  "CMakeFiles/tango_dataplane.dir/dataplane/switch.cpp.o.d"
  "CMakeFiles/tango_dataplane.dir/dataplane/trackers.cpp.o"
  "CMakeFiles/tango_dataplane.dir/dataplane/trackers.cpp.o.d"
  "CMakeFiles/tango_dataplane.dir/dataplane/tunnel_table.cpp.o"
  "CMakeFiles/tango_dataplane.dir/dataplane/tunnel_table.cpp.o.d"
  "libtango_dataplane.a"
  "libtango_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
