# Empty dependencies file for tango_dataplane.
# This may be replaced when dependencies are built.
