
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bgp_default.cpp" "src/CMakeFiles/tango_baselines.dir/baselines/bgp_default.cpp.o" "gcc" "src/CMakeFiles/tango_baselines.dir/baselines/bgp_default.cpp.o.d"
  "/root/repo/src/baselines/multihoming.cpp" "src/CMakeFiles/tango_baselines.dir/baselines/multihoming.cpp.o" "gcc" "src/CMakeFiles/tango_baselines.dir/baselines/multihoming.cpp.o.d"
  "/root/repo/src/baselines/rtt_prober.cpp" "src/CMakeFiles/tango_baselines.dir/baselines/rtt_prober.cpp.o" "gcc" "src/CMakeFiles/tango_baselines.dir/baselines/rtt_prober.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
