file(REMOVE_RECURSE
  "CMakeFiles/tango_baselines.dir/baselines/bgp_default.cpp.o"
  "CMakeFiles/tango_baselines.dir/baselines/bgp_default.cpp.o.d"
  "CMakeFiles/tango_baselines.dir/baselines/multihoming.cpp.o"
  "CMakeFiles/tango_baselines.dir/baselines/multihoming.cpp.o.d"
  "CMakeFiles/tango_baselines.dir/baselines/rtt_prober.cpp.o"
  "CMakeFiles/tango_baselines.dir/baselines/rtt_prober.cpp.o.d"
  "libtango_baselines.a"
  "libtango_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
