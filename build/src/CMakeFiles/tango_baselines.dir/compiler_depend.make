# Empty compiler generated dependencies file for tango_baselines.
# This may be replaced when dependencies are built.
