file(REMOVE_RECURSE
  "libtango_baselines.a"
)
