# Empty compiler generated dependencies file for tango_sim.
# This may be replaced when dependencies are built.
