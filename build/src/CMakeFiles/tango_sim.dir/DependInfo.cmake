
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/delay_model.cpp" "src/CMakeFiles/tango_sim.dir/sim/delay_model.cpp.o" "gcc" "src/CMakeFiles/tango_sim.dir/sim/delay_model.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/tango_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/tango_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/events.cpp" "src/CMakeFiles/tango_sim.dir/sim/events.cpp.o" "gcc" "src/CMakeFiles/tango_sim.dir/sim/events.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/CMakeFiles/tango_sim.dir/sim/link.cpp.o" "gcc" "src/CMakeFiles/tango_sim.dir/sim/link.cpp.o.d"
  "/root/repo/src/sim/wan.cpp" "src/CMakeFiles/tango_sim.dir/sim/wan.cpp.o" "gcc" "src/CMakeFiles/tango_sim.dir/sim/wan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
