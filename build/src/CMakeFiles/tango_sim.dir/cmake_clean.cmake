file(REMOVE_RECURSE
  "CMakeFiles/tango_sim.dir/sim/delay_model.cpp.o"
  "CMakeFiles/tango_sim.dir/sim/delay_model.cpp.o.d"
  "CMakeFiles/tango_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/tango_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/tango_sim.dir/sim/events.cpp.o"
  "CMakeFiles/tango_sim.dir/sim/events.cpp.o.d"
  "CMakeFiles/tango_sim.dir/sim/link.cpp.o"
  "CMakeFiles/tango_sim.dir/sim/link.cpp.o.d"
  "CMakeFiles/tango_sim.dir/sim/wan.cpp.o"
  "CMakeFiles/tango_sim.dir/sim/wan.cpp.o.d"
  "libtango_sim.a"
  "libtango_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
