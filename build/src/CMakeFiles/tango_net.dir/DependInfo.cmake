
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cpp" "src/CMakeFiles/tango_net.dir/net/checksum.cpp.o" "gcc" "src/CMakeFiles/tango_net.dir/net/checksum.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/CMakeFiles/tango_net.dir/net/headers.cpp.o" "gcc" "src/CMakeFiles/tango_net.dir/net/headers.cpp.o.d"
  "/root/repo/src/net/ip_address.cpp" "src/CMakeFiles/tango_net.dir/net/ip_address.cpp.o" "gcc" "src/CMakeFiles/tango_net.dir/net/ip_address.cpp.o.d"
  "/root/repo/src/net/ipv4_header.cpp" "src/CMakeFiles/tango_net.dir/net/ipv4_header.cpp.o" "gcc" "src/CMakeFiles/tango_net.dir/net/ipv4_header.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/tango_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/tango_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "src/CMakeFiles/tango_net.dir/net/prefix.cpp.o" "gcc" "src/CMakeFiles/tango_net.dir/net/prefix.cpp.o.d"
  "/root/repo/src/net/siphash.cpp" "src/CMakeFiles/tango_net.dir/net/siphash.cpp.o" "gcc" "src/CMakeFiles/tango_net.dir/net/siphash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
