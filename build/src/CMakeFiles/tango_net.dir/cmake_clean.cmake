file(REMOVE_RECURSE
  "CMakeFiles/tango_net.dir/net/checksum.cpp.o"
  "CMakeFiles/tango_net.dir/net/checksum.cpp.o.d"
  "CMakeFiles/tango_net.dir/net/headers.cpp.o"
  "CMakeFiles/tango_net.dir/net/headers.cpp.o.d"
  "CMakeFiles/tango_net.dir/net/ip_address.cpp.o"
  "CMakeFiles/tango_net.dir/net/ip_address.cpp.o.d"
  "CMakeFiles/tango_net.dir/net/ipv4_header.cpp.o"
  "CMakeFiles/tango_net.dir/net/ipv4_header.cpp.o.d"
  "CMakeFiles/tango_net.dir/net/packet.cpp.o"
  "CMakeFiles/tango_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/tango_net.dir/net/prefix.cpp.o"
  "CMakeFiles/tango_net.dir/net/prefix.cpp.o.d"
  "CMakeFiles/tango_net.dir/net/siphash.cpp.o"
  "CMakeFiles/tango_net.dir/net/siphash.cpp.o.d"
  "libtango_net.a"
  "libtango_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
