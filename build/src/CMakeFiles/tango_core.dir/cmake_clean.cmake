file(REMOVE_RECURSE
  "CMakeFiles/tango_core.dir/core/bird.cpp.o"
  "CMakeFiles/tango_core.dir/core/bird.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/config.cpp.o"
  "CMakeFiles/tango_core.dir/core/config.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/discovery.cpp.o"
  "CMakeFiles/tango_core.dir/core/discovery.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/mesh.cpp.o"
  "CMakeFiles/tango_core.dir/core/mesh.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/node.cpp.o"
  "CMakeFiles/tango_core.dir/core/node.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/pairing.cpp.o"
  "CMakeFiles/tango_core.dir/core/pairing.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/path.cpp.o"
  "CMakeFiles/tango_core.dir/core/path.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/registry.cpp.o"
  "CMakeFiles/tango_core.dir/core/registry.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/routing_policy.cpp.o"
  "CMakeFiles/tango_core.dir/core/routing_policy.cpp.o.d"
  "libtango_core.a"
  "libtango_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
