
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bird.cpp" "src/CMakeFiles/tango_core.dir/core/bird.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/bird.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/tango_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/discovery.cpp" "src/CMakeFiles/tango_core.dir/core/discovery.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/discovery.cpp.o.d"
  "/root/repo/src/core/mesh.cpp" "src/CMakeFiles/tango_core.dir/core/mesh.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/mesh.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/CMakeFiles/tango_core.dir/core/node.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/node.cpp.o.d"
  "/root/repo/src/core/pairing.cpp" "src/CMakeFiles/tango_core.dir/core/pairing.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/pairing.cpp.o.d"
  "/root/repo/src/core/path.cpp" "src/CMakeFiles/tango_core.dir/core/path.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/path.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/tango_core.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/routing_policy.cpp" "src/CMakeFiles/tango_core.dir/core/routing_policy.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/routing_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
