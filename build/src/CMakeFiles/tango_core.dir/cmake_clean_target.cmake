file(REMOVE_RECURSE
  "libtango_core.a"
)
