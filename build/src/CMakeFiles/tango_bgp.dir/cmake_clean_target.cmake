file(REMOVE_RECURSE
  "libtango_bgp.a"
)
