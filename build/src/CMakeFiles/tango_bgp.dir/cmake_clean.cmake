file(REMOVE_RECURSE
  "CMakeFiles/tango_bgp.dir/bgp/as_path.cpp.o"
  "CMakeFiles/tango_bgp.dir/bgp/as_path.cpp.o.d"
  "CMakeFiles/tango_bgp.dir/bgp/community.cpp.o"
  "CMakeFiles/tango_bgp.dir/bgp/community.cpp.o.d"
  "CMakeFiles/tango_bgp.dir/bgp/network.cpp.o"
  "CMakeFiles/tango_bgp.dir/bgp/network.cpp.o.d"
  "CMakeFiles/tango_bgp.dir/bgp/policy.cpp.o"
  "CMakeFiles/tango_bgp.dir/bgp/policy.cpp.o.d"
  "CMakeFiles/tango_bgp.dir/bgp/rib.cpp.o"
  "CMakeFiles/tango_bgp.dir/bgp/rib.cpp.o.d"
  "CMakeFiles/tango_bgp.dir/bgp/route.cpp.o"
  "CMakeFiles/tango_bgp.dir/bgp/route.cpp.o.d"
  "CMakeFiles/tango_bgp.dir/bgp/speaker.cpp.o"
  "CMakeFiles/tango_bgp.dir/bgp/speaker.cpp.o.d"
  "CMakeFiles/tango_bgp.dir/bgp/wire.cpp.o"
  "CMakeFiles/tango_bgp.dir/bgp/wire.cpp.o.d"
  "libtango_bgp.a"
  "libtango_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
