# Empty compiler generated dependencies file for tango_bgp.
# This may be replaced when dependencies are built.
