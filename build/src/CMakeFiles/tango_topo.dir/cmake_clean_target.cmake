file(REMOVE_RECURSE
  "libtango_topo.a"
)
