file(REMOVE_RECURSE
  "CMakeFiles/tango_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/tango_topo.dir/topo/topology.cpp.o.d"
  "CMakeFiles/tango_topo.dir/topo/vultr_scenario.cpp.o"
  "CMakeFiles/tango_topo.dir/topo/vultr_scenario.cpp.o.d"
  "libtango_topo.a"
  "libtango_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
