# Empty compiler generated dependencies file for tango_topo.
# This may be replaced when dependencies are built.
