// tango-stats: the operator's view of a running Tango deployment.
//
// Runs the LA<->NY testbed with full observability wired (one metrics
// registry + packet tracer shared by both nodes and the WAN), injects the
// §5 instability storm on GTT, and prints a live per-path table every 10
// simulated seconds: health state, the sender's view (OWD EWMA, jitter,
// loss) and the receiver-side OWD distribution (p50/p99 from the registry's
// log-linear histograms).
//
// At the end it prints headline counters, the tail of the packet trace, and
// writes the full snapshot in both exporter formats to
// tango_stats_snapshot.prom / tango_stats_snapshot.json (stem overridable
// via argv[1]) — the same artifacts CI uploads from the chaos soak.
//
// --shards=N runs the WAN on the sharded engine (transit routers round-robin
// over shards 1..N-1) and adds a per-shard utilization/stall table: events
// executed, busy time against wall time, park spins (the stall proxy), and
// cross-shard mailbox traffic.  Scheduler and WAN counters then carry a
// shard="i" label in the snapshot.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pairing.hpp"
#include "sim/events.hpp"
#include "telemetry/export.hpp"
#include "topo/vultr_scenario.hpp"

using namespace tango;
using namespace tango::topo::vultr;

namespace {

/// The registry's per-path OWD histogram for `path` at `node`, or nullptr.
const telemetry::Histogram* owd_histogram(const telemetry::MetricsRegistry& registry,
                                          const std::string& node, core::PathId path) {
  const telemetry::Labels labels{{"node", node}, {"path", std::to_string(path)}};
  for (const telemetry::MetricEntry& e : registry.entries()) {
    if (e.kind == telemetry::MetricKind::histogram && e.name == "tango_path_owd_us" &&
        e.labels == labels) {
      return e.histogram;
    }
  }
  return nullptr;
}

void print_path_table(sim::Wan& wan, core::TangoNode& ny,
                      const telemetry::MetricsRegistry& registry) {
  std::printf("t=%6.1fs  %-7s %-11s %8s %8s %7s %9s %9s %8s\n", sim::to_seconds(wan.now()),
              "path", "health", "owd ms", "jit ms", "loss", "p50 us", "p99 us", "active");
  const auto active = ny.dp().active_path(kServerLa);
  for (core::PathId id : ny.paths_to(kServerLa)) {
    const core::DiscoveredPath* p = ny.registry().find(id);
    const core::PathReport* r = ny.registry().report(id);
    const telemetry::Histogram* h = owd_histogram(registry, "la", id);
    std::printf("          %-7s %-11s", p != nullptr ? p->label.c_str() : "?",
                core::to_string(ny.health().state(id)));
    if (r != nullptr) {
      std::printf(" %8.2f %8.2f %6.2f%%", r->owd_ewma_ms, r->jitter_ms, 100.0 * r->loss_rate);
    } else {
      std::printf(" %8s %8s %7s", "-", "-", "-");
    }
    if (h != nullptr && h->count() > 0) {
      std::printf(" %9llu %9llu",
                  static_cast<unsigned long long>(h->value_at_quantile(0.5)),
                  static_cast<unsigned long long>(h->value_at_quantile(0.99)));
    } else {
      std::printf(" %9s %9s", "-", "-");
    }
    std::printf(" %8s\n", active == id ? "<==" : "");
  }
  std::printf("\n");
}

/// The operator's shard view: how evenly the work spreads and how much time
/// each shard spends parked waiting for its neighbors' frontiers.
void print_shard_table(sim::Wan& wan, double wall_seconds) {
  std::printf("shard utilization (%u shards, %.2fs wall):\n", wan.shard_count(), wall_seconds);
  std::printf("  %-6s %10s %9s %7s %12s %10s %9s\n", "shard", "events", "busy ms", "util%",
              "park spins", "mail out", "barriers");
  for (std::uint32_t i = 0; i < wan.shard_count(); ++i) {
    const sim::ShardEngine::Stats st = wan.shard_stats(i);
    std::printf("  %-6u %10llu %9.1f %6.1f%% %12llu %10llu %9llu\n", i,
                static_cast<unsigned long long>(wan.shard_executed(i)), 1e3 * st.busy_seconds,
                wall_seconds > 0 ? 100.0 * st.busy_seconds / wall_seconds : 0.0,
                static_cast<unsigned long long>(st.park_spins),
                static_cast<unsigned long long>(st.mail_posted),
                static_cast<unsigned long long>(st.barriers));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string stem = "tango_stats_snapshot";
  std::uint32_t shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<std::uint32_t>(std::strtoul(argv[i] + 9, nullptr, 10));
    } else {
      stem = argv[i];
    }
  }

  telemetry::MetricsRegistry registry;
  telemetry::PacketTracer tracer;
  tracer.enable_sampled(64);  // 1/64 lifecycles: the always-on production rate

  topo::VultrScenario s = topo::make_vultr_scenario();
  static constexpr std::array<bgp::RouterId, 7> kInterior{kNtt,    kTelia,   kGtt,    kCogent,
                                                          kLevel3, kVultrLa, kVultrNy};
  sim::Wan wan{s.topo, sim::Rng{7},
               sim::WanOptions{.sharded = shards > 0,
                               .plan = sim::ShardPlan::round_robin(shards, kInterior)}};
  const telemetry::Observability obs{.metrics = &registry, .tracer = &tracer};
  core::TangoNode la{s.topo, wan,
                     core::NodeConfig{.router = kServerLa,
                                      .host_prefix = s.plan.la_hosts,
                                      .tunnel_prefix_pool = {s.plan.la_tunnel.begin(),
                                                             s.plan.la_tunnel.end()},
                                      .edge_asns = {kAsnVultr, kAsnServerLa},
                                      .name = "la",
                                      .obs = obs}};
  core::TangoNode ny{s.topo, wan,
                     core::NodeConfig{.router = kServerNy,
                                      .host_prefix = s.plan.ny_hosts,
                                      .tunnel_prefix_pool = {s.plan.ny_tunnel.begin(),
                                                             s.plan.ny_tunnel.end()},
                                      .edge_asns = {kAsnVultr, kAsnServerNy},
                                      .name = "ny",
                                      .obs = obs}};
  wan.wire_observability(obs);
  core::TangoPairing pairing{wan, la, ny};
  pairing.establish();
  ny.set_policy(std::make_unique<core::HysteresisPolicy>(/*margin_ms=*/1.0));
  pairing.start();
  ny.start_probing(10 * sim::kMillisecond);
  la.start_probing(10 * sim::kMillisecond);

  // The §5 instability storm on GTT toward LA, mid-run: the table shows the
  // policy abandoning the stormy path and the health column doing its job.
  sim::inject(wan, sim::InstabilityEvent{.link = topo::VultrScenario::backbone_to_la(kAsnGtt),
                                         .at = 30 * sim::kSecond,
                                         .duration = 30 * sim::kSecond,
                                         .noise_sigma_ms = 4.0,
                                         .spike_prob = 0.25,
                                         .spike_min_ms = 20.0,
                                         .spike_max_ms = 50.0});
  std::printf("instability storm on GTT: t=30s..60s\n\n");

  std::function<void()> table = [&]() {
    print_path_table(wan, ny, registry);
    if (wan.now() < 90 * sim::kSecond) wan.events().schedule_in(10 * sim::kSecond, table);
  };
  wan.events().schedule_in(10 * sim::kSecond, table);

  const auto wall_start = std::chrono::steady_clock::now();
  wan.run_until(90 * sim::kSecond);
  pairing.stop();
  ny.stop_probing();
  la.stop_probing();
  wan.run_all();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (wan.sharded()) print_shard_table(wan, wall_seconds);

  std::printf("headline counters:\n");
  for (const telemetry::MetricEntry& e : registry.entries()) {
    if (e.kind != telemetry::MetricKind::counter || e.counter->value() == 0) continue;
    // Headline allowlist: throughput/health, plus the trustworthy-telemetry
    // drop classes (zero — and therefore silent — unless something is
    // forging, replaying or suppressing; see DESIGN.md §8a).
    if (e.name != "tango_wan_delivered_total" && e.name != "tango_switch_encap_total" &&
        e.name != "tango_node_path_switches_total" &&
        e.name != "tango_health_transitions_total" &&
        e.name != "tango_switch_replay_drops_total" &&
        e.name != "tango_node_report_forged_total" &&
        e.name != "tango_node_report_replayed_total" &&
        e.name != "tango_node_report_stale_total" &&
        e.name != "tango_node_report_gaps_total" &&
        e.name != "tango_node_report_lying_total") {
      continue;
    }
    std::string labels;
    for (const auto& [k, v] : e.labels) {
      labels += labels.empty() ? "{" : ",";
      labels += k + "=" + v;
    }
    if (!labels.empty()) labels += "}";
    std::printf("  %-38s %12llu\n", (e.name + labels).c_str(),
                static_cast<unsigned long long>(e.counter->value()));
  }

  const sim::Wan::FibSyncStats& fib = wan.fib_sync_stats();
  const bool inc_mode = wan.fib_sync_mode() == sim::FibSync::incremental;
  std::printf("\ncontrol->data-plane convergence (sync_fibs, %s mode):\n",
              inc_mode ? "incremental" : "full-rebuild");
  std::printf("  %-38s %12llu\n", "syncs", static_cast<unsigned long long>(fib.syncs));
  std::printf("  %-38s %12llu\n", "fib_delta_applies",
              static_cast<unsigned long long>(fib.delta_applies));
  std::printf("  %-38s %12llu\n", "router_rebuild_fallbacks",
              static_cast<unsigned long long>(fib.router_rebuilds));
  std::printf("  %-38s %12llu\n", "full_rebuilds",
              static_cast<unsigned long long>(fib.full_rebuilds));
  std::printf("  %-38s %12llu\n", "cache_invalidations{kind=prefix}",
              static_cast<unsigned long long>(fib.prefix_invalidations));
  std::printf("  %-38s %12llu\n", "cache_invalidations{kind=generation}",
              static_cast<unsigned long long>(fib.generation_invalidations));
  std::printf("  %-38s %9llu us\n", "last_convergence_duration",
              static_cast<unsigned long long>(fib.last_sync_micros));

  const auto events = tracer.events();
  std::printf("\npacket trace: %llu events admitted (1/64 sampling), last %zu retained\n",
              static_cast<unsigned long long>(tracer.recorded()),
              events.size() < 5 ? events.size() : std::size_t{5});
  const std::size_t tail = events.size() < 5 ? 0 : events.size() - 5;
  for (std::size_t i = tail; i < events.size(); ++i) {
    const telemetry::TraceEvent& e = events[i];
    std::printf("  t=%.6fs node=%u path=%u %s/%s key=%llu\n", sim::to_seconds(e.at), e.node,
                e.path, telemetry::to_string(e.stage), telemetry::to_string(e.cause),
                static_cast<unsigned long long>(e.key));
  }

  if (!telemetry::write_snapshot(registry, stem)) {
    std::fprintf(stderr, "FAIL: cannot write %s.{prom,json}\n", stem.c_str());
    return 1;
  }
  std::printf("\nwrote %s.prom and %s.json (%zu instruments)\n", stem.c_str(), stem.c_str(),
              registry.size());

  // Sanity for scripted runs: traffic flowed and the snapshot is non-trivial.
  return wan.delivered() > 0 && registry.size() > 20 ? 0 : 1;
}
