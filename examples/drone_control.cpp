// The paper's §2 motivating application: real-time drone control.
//
// "ASX performs real-time analytics on drone data to enable adaptive
// control.  To that end, ASX runs virtual machines in a cost-effective and
// reliable cloud in ASY.  Soon enough, ASX realizes that occasional
// increases in network delay hinder the drone applications."
//
// Here the NY site streams drone telemetry to compute in LA with a hard
// 40 ms one-way deadline.  Mid-run, GTT (the best path) suffers the Fig. 4
// (right) instability storm.  We fly the same mission twice:
//   * as a plain tenant on the BGP default path, and
//   * under Tango with the hysteresis policy.
#include <cstdio>

#include "core/pairing.hpp"
#include "sim/events.hpp"
#include "telemetry/table.hpp"
#include "topo/vultr_scenario.hpp"

using namespace tango;
using namespace tango::topo::vultr;

namespace {

constexpr double kDeadlineMs = 40.0;
constexpr sim::Time kMission = 12 * sim::kMinute;
constexpr int kPacketsPerSecond = 200;  // 5 ms control loop

struct MissionResult {
  telemetry::Summary delay;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t path_switches = 0;

  [[nodiscard]] double miss_pct() const {
    return delivered == 0 ? 0.0
                          : 100.0 * static_cast<double>(deadline_misses) /
                                static_cast<double>(delivered);
  }
};

/// Injects the §5 instability storm on GTT toward LA, minutes 4-9.
void inject_storm(sim::Wan& wan) {
  sim::inject(wan, sim::InstabilityEvent{
                       .link = topo::VultrScenario::backbone_to_la(kAsnGtt),
                       .at = 4 * sim::kMinute,
                       .duration = 5 * sim::kMinute,
                       .noise_sigma_ms = 4.0,
                       .spike_prob = 0.25,
                       .spike_min_ms = 20.0,
                       .spike_max_ms = 49.5});
}

MissionResult fly_with_tango(std::uint64_t seed) {
  topo::VultrScenario s = topo::make_vultr_scenario();
  sim::Wan wan{s.topo, sim::Rng{seed}};
  core::TangoNode la{s.topo, wan,
                     core::NodeConfig{.router = kServerLa,
                                      .host_prefix = s.plan.la_hosts,
                                      .tunnel_prefix_pool = {s.plan.la_tunnel.begin(),
                                                             s.plan.la_tunnel.end()},
                                      .edge_asns = {kAsnVultr, kAsnServerLa}}};
  core::TangoNode ny{s.topo, wan,
                     core::NodeConfig{.router = kServerNy,
                                      .host_prefix = s.plan.ny_hosts,
                                      .tunnel_prefix_pool = {s.plan.ny_tunnel.begin(),
                                                             s.plan.ny_tunnel.end()},
                                      .edge_asns = {kAsnVultr, kAsnServerNy}}};
  core::TangoPairing pairing{wan, la, ny};
  pairing.establish();
  ny.set_policy(std::make_unique<core::HysteresisPolicy>(1.0));
  pairing.start();
  ny.start_probing(10 * sim::kMillisecond);
  la.start_probing(10 * sim::kMillisecond);
  inject_storm(wan);

  MissionResult result;
  telemetry::TimeSeries delays{"tango"};
  la.dp().set_host_handler([&](const net::Packet& inner,
                               const std::optional<dataplane::ReceiveInfo>& info) {
    if (!info) return;
    // Measurement probes share the tunnels; the mission stats count only
    // the drone flow (dport 50124).
    net::ByteReader r{inner.payload()};
    const auto udp = net::UdpHeader::parse(r);
    if (!udp || udp->dst_port != 50124) return;
    ++result.delivered;
    delays.record(wan.now(), info->owd_ms);
    if (info->owd_ms > kDeadlineMs) ++result.deadline_misses;
  });

  const std::vector<std::uint8_t> frame(128, 0xD1);
  const sim::Time interval = sim::kSecond / kPacketsPerSecond;
  for (sim::Time t = 0; t < kMission; t += interval) {
    wan.events().schedule_at(t, [&ny, &la, &frame]() {
      ny.dp().send_from_host(net::make_udp_packet(ny.host_address(2), la.host_address(2),
                                                  50123, 50124, frame));
    });
    ++result.sent;
  }

  wan.events().run_until(kMission);
  pairing.stop();
  ny.stop_probing();
  la.stop_probing();
  wan.events().run_all();

  result.delay = delays.summary();
  result.path_switches = ny.path_switches();
  return result;
}

MissionResult fly_without_tango(std::uint64_t seed) {
  // The status quo (Fig. 1): same storm, same traffic, single BGP path,
  // measured at the application by payload timestamps (true clocks here,
  // to the baseline's advantage).
  topo::VultrScenario s = topo::make_vultr_scenario();
  sim::Wan wan{s.topo, sim::Rng{seed}};
  inject_storm(wan);

  // Status quo rides the BGP default (NTT); to make the comparison as hard
  // as possible for Tango, give the baseline the *best* static path instead:
  // pin the NY host prefix to GTT with communities (an operator who tuned
  // once, offline).
  s.topo.bgp().originate(kServerLa, net::Prefix{s.plan.la_hosts},
                         bgp::CommunitySet{bgp::action::do_not_announce_to(kAsnNtt),
                                           bgp::action::do_not_announce_to(kAsnTelia)});
  wan.sync_fibs();

  MissionResult result;
  telemetry::TimeSeries delays{"static"};
  wan.attach(kServerLa, [&](const net::Packet& p) {
    ++result.delivered;
    net::ByteReader r{p.payload()};
    (void)net::UdpHeader::parse(r);
    const double owd_ms = sim::to_ms(wan.now() - static_cast<sim::Time>(r.u64()));
    delays.record(wan.now(), owd_ms);
    if (owd_ms > kDeadlineMs) ++result.deadline_misses;
  });

  const sim::Time interval = sim::kSecond / kPacketsPerSecond;
  for (sim::Time t = 0; t < kMission; t += interval) {
    wan.events().schedule_at(t, [&wan, &s]() {
      net::ByteWriter w{8};
      w.u64(static_cast<std::uint64_t>(wan.now()));
      wan.send_from(kServerNy,
                    net::make_udp_packet(s.plan.ny_hosts.host(2), s.plan.la_hosts.host(2),
                                         50123, 50124, std::move(w).take()));
    });
    ++result.sent;
  }
  wan.events().run_all();
  result.delay = delays.summary();
  return result;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 99;
  std::printf("Drone control NY -> LA: 200 Hz control loop, %0.f ms deadline, 12 min\n",
              kDeadlineMs);
  std::printf("mission; GTT suffers a 5-minute instability storm from minute 4.\n\n");

  const MissionResult tango = fly_with_tango(kSeed);
  const MissionResult fixed = fly_without_tango(kSeed);

  telemetry::Table table{{"Metric", "Static best path (tuned once)", "Tango (adaptive)"}};
  table.add_row({"mean one-way delay (ms)", telemetry::fmt(fixed.delay.mean),
                 telemetry::fmt(tango.delay.mean)});
  table.add_row({"p99 (ms)", telemetry::fmt(fixed.delay.p99), telemetry::fmt(tango.delay.p99)});
  table.add_row({"max (ms)", telemetry::fmt(fixed.delay.max), telemetry::fmt(tango.delay.max)});
  table.add_row({"deadline misses", telemetry::fmt(fixed.miss_pct(), 2) + "%",
                 telemetry::fmt(tango.miss_pct(), 2) + "%"});
  table.add_row({"packets delivered",
                 std::to_string(fixed.delivered) + "/" + std::to_string(fixed.sent),
                 std::to_string(tango.delivered) + "/" + std::to_string(tango.sent)});
  table.add_row({"path switches", "0", std::to_string(tango.path_switches)});
  std::printf("%s\n", table.render().c_str());

  std::printf("Even against an offline-tuned static path, Tango's live one-way telemetry\n");
  std::printf("dodges the storm: it rides GTT while GTT is clean, abandons it within\n");
  std::printf("seconds of the first spikes, and returns when the storm passes.\n");
  return tango.miss_pct() < fixed.miss_pct() ? 0 : 1;
}
