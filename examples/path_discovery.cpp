// Walkthrough of the §4.1 discovery algorithm, step by step, exactly as the
// paper describes it:
//
//   "1) We observed the best BGP route for the destination exported by
//    Vultr to our server at the source DC.  2) We configured our BIRD
//    instance at the destination DC to attach a BGP community that would
//    suppress this route.  3) We waited for BGP to propagate and confirmed
//    that the source DC now sees an alternate route.  4) We recorded the
//    communities and routes involved and repeated the process..."
//
// This example replays that loop manually against the control plane (no
// TangoNode involved), then shows the one-call library API doing the same.
#include <cstdio>

#include "core/discovery.hpp"
#include "topo/vultr_scenario.hpp"

using namespace tango;
using namespace tango::topo::vultr;

namespace {

void manual_walkthrough(topo::VultrScenario& s) {
  std::printf("--- Manual replay: exposing paths for LA -> NY traffic ---\n\n");
  bgp::BgpNetwork& bgp = s.topo.bgp();
  bgp::CommunitySet communities;

  for (std::size_t i = 0; i < s.plan.ny_tunnel.size(); ++i) {
    const net::Prefix prefix{s.plan.ny_tunnel[i]};

    std::printf("step %zu: NY announces %s", i + 1, prefix.to_string().c_str());
    if (communities.empty()) {
      std::printf(" (no communities: whatever BGP picks)\n");
    } else {
      std::printf(" with communities {%s}\n", communities.to_string().c_str());
    }
    bgp.originate(kServerNy, prefix, communities);  // converges internally

    // (1) Observe the best route at the source.
    const bgp::Route* best = bgp.best_route(kServerLa, prefix);
    if (best == nullptr) {
      std::printf("        LA hears: NOTHING - the prefix is unreachable.\n");
      std::printf("        Every wide-area path is now enumerated; done.\n\n");
      bgp.withdraw(kServerNy, prefix);
      return;
    }
    std::printf("        LA hears AS path [%s]\n", best->as_path.to_string().c_str());
    std::printf("        transit chain: %s\n",
                s.topo.label_path(best->as_path.unique_sequence(),
                                  {kAsnVultr, kAsnServerLa, kAsnServerNy})
                    .c_str());

    // (2) Pick the transit to suppress next: the AS adjacent to the
    //     destination edge on the observed path.
    auto target = core::suppression_target(best->as_path,
                                           {kAsnVultr, kAsnServerLa, kAsnServerNy});
    if (!target) {
      std::printf("        nothing left to suppress; done.\n\n");
      return;
    }
    std::printf("        -> next: tell Vultr NY \"do not announce to %s\" (64600:%u)\n\n",
                s.topo.asn_name(*target).c_str(), *target);
    communities.add(bgp::action::do_not_announce_to(*target));
  }
  std::printf("(prefix pool exhausted before unreachability)\n\n");
}

}  // namespace

int main() {
  topo::VultrScenario s = topo::make_vultr_scenario();
  manual_walkthrough(s);

  std::printf("--- The same thing through the library API ---\n\n");
  topo::VultrScenario s2 = topo::make_vultr_scenario();
  core::DiscoveryResult result = core::discover_paths(
      s2.topo, core::DiscoveryRequest{
                   .destination = kServerNy,
                   .source = kServerLa,
                   .prefix_pool = {s2.plan.ny_tunnel.begin(), s2.plan.ny_tunnel.end()},
                   .edge_asns = {kAsnVultr, kAsnServerLa, kAsnServerNy}});

  for (const core::DiscoveredPath& p : result.paths) {
    std::printf("  %s\n", p.to_string().c_str());
  }
  std::printf("\n%zu paths, %llu BGP messages, terminated by %s.\n", result.paths.size(),
              static_cast<unsigned long long>(result.bgp_messages),
              result.exhausted ? "unreachability (complete enumeration)"
                               : "prefix-pool exhaustion");
  std::printf("\nEach prefix now *names a route* through the core: sending a packet to an\n"
              "address inside prefix i makes the Internet deliver it over path i - source\n"
              "routing with zero cooperation from the core (paper section 3).\n");
  return 0;
}
