// Tango-of-N (paper §6): three cooperating sites — LA, NY and Chicago —
// forming the "open and robust wide-area overlay" the paper envisions, out
// of pairwise Tango building blocks.
//
// Each ordered pair gets its own discovered path set, tunnels, one-way
// measurements and policy decision; the mesh coordinates path-id ranges and
// prefix-pool slices.
#include <cstdio>

#include "core/mesh.hpp"
#include "telemetry/table.hpp"
#include "topo/vultr_scenario.hpp"

using namespace tango;
using namespace tango::topo::vultr;

namespace {

core::NodeConfig site_config(const topo::ThreeSiteScenario::SitePlan& plan) {
  return core::NodeConfig{.router = plan.server,
                          .host_prefix = plan.hosts,
                          .tunnel_prefix_pool = plan.tunnel_pool,
                          .edge_asns = {kAsnVultr, plan.server_asn}};
}

}  // namespace

int main() {
  topo::ThreeSiteScenario s = topo::make_three_site_scenario();
  sim::Wan wan{s.topo, sim::Rng{6}};

  core::TangoNode la{s.topo, wan, site_config(s.la)};
  core::TangoNode ny{s.topo, wan, site_config(s.ny)};
  core::TangoNode ch{s.topo, wan, site_config(s.ch)};

  core::TangoMesh mesh{wan};
  mesh.add_site(la);
  mesh.add_site(ny);
  mesh.add_site(ch);

  auto results = mesh.establish();
  std::printf("mesh established: %zu ordered pairs\n\n", results.size());

  la.set_policy(std::make_unique<core::HysteresisPolicy>(1.0));
  ny.set_policy(std::make_unique<core::HysteresisPolicy>(1.0));
  ch.set_policy(std::make_unique<core::HysteresisPolicy>(1.0));
  mesh.start();
  mesh.start_probing(10 * sim::kMillisecond);
  wan.events().run_until(5 * sim::kSecond);
  mesh.stop();
  mesh.stop_probing();
  wan.events().run_all();

  struct SiteRef {
    const char* name;
    core::TangoNode* node;
    bgp::RouterId router;
  };
  const SiteRef sites[] = {{"LA", &la, kServerLa}, {"NY", &ny, kServerNy},
                           {"CH", &ch, kServerCh}};

  telemetry::Table table{{"From", "To", "Paths", "Default", "Chosen", "OWD EWMA (ms)"}};
  for (const SiteRef& from : sites) {
    for (const SiteRef& to : sites) {
      if (from.node == to.node) continue;
      const auto ids = from.node->paths_to(to.router);
      const auto active = from.node->dp().active_path(to.router);
      const core::DiscoveredPath* def = from.node->registry().find(ids.front());
      const core::DiscoveredPath* cur = active ? from.node->registry().find(*active) : nullptr;
      const core::PathReport* report = active ? from.node->registry().report(*active) : nullptr;
      table.add_row({from.name, to.name, std::to_string(ids.size()), def->label,
                     cur != nullptr ? cur->label : "-",
                     report != nullptr ? telemetry::fmt(report->owd_ewma_ms) : "-"});
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("each ordered pair runs the full two-party machinery — one-way\n");
  std::printf("measurements compare paths within a pair (one sender clock, one receiver\n");
  std::printf("clock), so no cross-site clock sync is needed (paper §3 footnote).\n\n");

  std::printf("reports delivered over the cooperation channels: %llu\n",
              static_cast<unsigned long long>(mesh.reports_delivered()));

  // The LA<->NY pairs must still pick GTT (the two-party result holds inside
  // the mesh).
  const auto ny_to_la = ny.paths_to(kServerLa);
  const bool ok = ny.dp().active_path(kServerLa) == ny_to_la[2];
  std::printf("NY->LA inside the mesh still converges on GTT: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
