// Live reaction to the Fig. 4 (middle) route-change event.
//
// The NY sender sits on GTT (the measured best path).  At t=60 s GTT
// re-routes internally: +5 ms for three minutes, then reverts.  Watch the
// hysteresis policy move to Telia and move back, with the event log printed
// as it happens.
#include <cstdio>

#include "core/pairing.hpp"
#include "sim/events.hpp"
#include "topo/vultr_scenario.hpp"

using namespace tango;
using namespace tango::topo::vultr;

int main() {
  topo::VultrScenario s = topo::make_vultr_scenario();
  sim::Wan wan{s.topo, sim::Rng{7}};
  core::TangoNode la{s.topo, wan,
                     core::NodeConfig{.router = kServerLa,
                                      .host_prefix = s.plan.la_hosts,
                                      .tunnel_prefix_pool = {s.plan.la_tunnel.begin(),
                                                             s.plan.la_tunnel.end()},
                                      .edge_asns = {kAsnVultr, kAsnServerLa}}};
  core::TangoNode ny{s.topo, wan,
                     core::NodeConfig{.router = kServerNy,
                                      .host_prefix = s.plan.ny_hosts,
                                      .tunnel_prefix_pool = {s.plan.ny_tunnel.begin(),
                                                             s.plan.ny_tunnel.end()},
                                      .edge_asns = {kAsnVultr, kAsnServerNy}}};
  core::TangoPairing pairing{wan, la, ny};
  pairing.establish();
  ny.set_policy(std::make_unique<core::HysteresisPolicy>(/*margin_ms=*/1.0));
  pairing.start();
  ny.start_probing(10 * sim::kMillisecond);
  la.start_probing(10 * sim::kMillisecond);

  sim::inject(wan, sim::RouteChangeEvent{
                       .link = topo::VultrScenario::backbone_to_la(kAsnGtt),
                       .at = 60 * sim::kSecond,
                       .duration = 3 * sim::kMinute,
                       .shift_ms = 5.0,
                       .transition = 10 * sim::kSecond,
                       .transition_sigma_ms = 4.0});
  std::printf("event injected: GTT internal route change at t=60s (+5 ms for 3 min)\n\n");

  // Poll the sender's state once a second and log path changes.
  auto last_path = std::make_shared<std::optional<core::PathId>>();
  std::function<void()> monitor = [&]() {
    const auto active = ny.dp().active_path(kServerLa);
    if (active != *last_path) {
      const core::DiscoveredPath* p = ny.registry().find(*active);
      const core::PathReport* r = ny.registry().report(*active);
      std::printf("t=%6.1fs  ACTIVE PATH -> %-6s", sim::to_seconds(wan.now()),
                  p ? p->label.c_str() : "?");
      if (r) std::printf("  (owd ewma %.2f ms)", r->owd_ewma_ms);
      std::printf("\n");
      *last_path = active;
    }
    if (wan.now() < 6 * sim::kMinute) wan.events().schedule_in(sim::kSecond, monitor);
  };
  wan.events().schedule_in(sim::kSecond, monitor);

  // Also log the sender's view of GTT every 30 s for context.
  std::function<void()> report = [&]() {
    const core::PathReport* gtt = ny.registry().report(3);
    const core::PathReport* telia = ny.registry().report(2);
    if (gtt && telia) {
      std::printf("t=%6.1fs  view: GTT %.2f ms, Telia %.2f ms\n",
                  sim::to_seconds(wan.now()), gtt->owd_ewma_ms, telia->owd_ewma_ms);
    }
    if (wan.now() < 6 * sim::kMinute) wan.events().schedule_in(30 * sim::kSecond, report);
  };
  wan.events().schedule_in(30 * sim::kSecond, report);

  wan.events().run_until(6 * sim::kMinute);
  pairing.stop();
  ny.stop_probing();
  la.stop_probing();
  wan.events().run_all();

  std::printf("\nsummary: %llu path switches during the 6-minute run\n",
              static_cast<unsigned long long>(ny.path_switches()));
  std::printf("(paper §5: \"during these route-change events, selecting an alternate\n");
  std::printf(" path based on live data is required for optimal performance\")\n");

  const core::DiscoveredPath* final_path = ny.registry().find(*ny.dp().active_path(kServerLa));
  const bool back_on_gtt = final_path != nullptr && final_path->label == "GTT";
  return back_on_gtt && ny.path_switches() >= 2 ? 0 : 1;
}
