// From simulation to deployment: after running discovery, emit the concrete
// artifacts an operator would install on the paper's testbed —
//
//   * bird.conf for each server (the §4.1 control plane, with the pinning
//     communities in BIRD filter syntax),
//   * the static Tango tunnel configuration (§4: "we generated static
//     configurations for tunnel endpoints"), and
//   * a pcap trace of the encapsulated WAN traffic, byte-exact and
//     dissectable with tcpdump/Wireshark.
#include <cstdio>

#include "core/bird.hpp"
#include "core/config.hpp"
#include "core/pairing.hpp"
#include "dataplane/pcap.hpp"
#include "topo/vultr_scenario.hpp"

using namespace tango;
using namespace tango::topo::vultr;

int main() {
  topo::VultrScenario s = topo::make_vultr_scenario();
  sim::Wan wan{s.topo, sim::Rng{8}};

  // Authenticated telemetry on (§6): both sides share the pairing key.
  const net::SipHashKey key{.k0 = 0x544e474f54414e47ull, .k1 = 0x32303232686f746eull};

  core::TangoNode la{s.topo, wan,
                     core::NodeConfig{.router = kServerLa,
                                      .host_prefix = s.plan.la_hosts,
                                      .tunnel_prefix_pool = {s.plan.la_tunnel.begin(),
                                                             s.plan.la_tunnel.end()},
                                      .edge_asns = {kAsnVultr, kAsnServerLa},
                                      .auth_key = key}};
  core::TangoNode ny{s.topo, wan,
                     core::NodeConfig{.router = kServerNy,
                                      .host_prefix = s.plan.ny_hosts,
                                      .tunnel_prefix_pool = {s.plan.ny_tunnel.begin(),
                                                             s.plan.ny_tunnel.end()},
                                      .edge_asns = {kAsnVultr, kAsnServerNy},
                                      .auth_key = key}};
  core::TangoPairing pairing{wan, la, ny};
  auto [la_out, ny_out] = pairing.establish();

  // --- Artifact 1: bird.conf for the NY server ------------------------------
  std::printf("===== bird.conf (NY server: announces the prefixes LA discovered) =====\n\n");
  const std::string bird = core::render_bird_config(
      ny.config(), la_out.paths,
      core::BirdConfigOptions{.local_asn = kAsnServerNy,
                              .provider_asn = kAsnVultr,
                              .neighbor_address = "2001:19f0:ffff::1",
                              .router_id = "10.0.0.2"});
  std::printf("%s\n", bird.c_str());

  // --- Artifact 2: the LA switch's static tunnel configuration ---------------
  std::printf("===== tango.conf (LA switch: tunnels toward NY) =====\n\n");
  core::TangoConfig config;
  config.peer_host_prefix = s.plan.ny_hosts;
  for (core::PathId id : la.dp().tunnels().ids()) {
    config.tunnels.push_back(core::TunnelConfigEntry{
        .tunnel = *la.dp().tunnels().find(id),
        .communities = la.registry().find(id)->communities});
  }
  const std::string tango_conf = core::render_config(config);
  std::printf("%s\n", tango_conf.c_str());
  // Round-trip sanity: what we print is what we can load.
  if (!core::parse_config(tango_conf)) {
    std::printf("FATAL: generated config does not parse\n");
    return 1;
  }

  // --- Artifact 3: a pcap of authenticated tunnel traffic --------------------
  const std::string pcap_path = "tango_capture.pcap";
  dataplane::PcapWriter pcap{pcap_path};
  wan.set_hop_observer([&pcap, &wan](bgp::RouterId from, bgp::RouterId,
                                     const net::Packet& p) {
    if (from == kVultrLa) pcap.write(wan.now(), p);  // capture at LA's border
  });
  ny.dp().set_host_handler([](const net::Packet&, const auto&) {});
  const std::vector<std::uint8_t> payload(64, 0x55);
  for (int i = 0; i < 20; ++i) {
    wan.events().schedule_in(i * 10 * sim::kMillisecond, [&la, &ny, &payload]() {
      la.dp().send_from_host(net::make_udp_packet(la.host_address(1), ny.host_address(1),
                                                  40000, 443, payload));
    });
  }
  wan.events().run_all();
  pcap.close();

  std::printf("===== capture =====\n\n");
  std::printf("wrote %llu encapsulated packets to %s\n",
              static_cast<unsigned long long>(pcap.packets_written()), pcap_path.c_str());
  std::printf("(LINKTYPE_RAW; open with `tcpdump -r %s` — outer IPv6 + UDP :%u +\n",
              pcap_path.c_str(), net::TangoHeader::kUdpPort);
  std::printf(" 32-byte authenticated Tango header + inner packet)\n\n");

  std::printf("auth check: NY accepted %llu packets, rejected %llu forgeries\n",
              static_cast<unsigned long long>(ny.dp().receiver().packets_received()),
              static_cast<unsigned long long>(ny.dp().receiver().auth_failures()));
  return 0;
}
