// Quickstart: the whole Tango lifecycle in ~100 lines.
//
//   1. Build the simulated Internet (the paper's Vultr LA/NY environment).
//   2. Stand up a Tango node at each edge and pair them.
//   3. Discover the wide-area paths with BGP communities.
//   4. Probe, exchange one-way measurements, and let the policy pick paths.
//   5. Send application traffic and read the live telemetry.
#include <cstdio>

#include "core/pairing.hpp"
#include "telemetry/table.hpp"
#include "topo/vultr_scenario.hpp"

using namespace tango;
using namespace tango::topo::vultr;

int main() {
  // 1. The substrate: AS topology + BGP + packet-level WAN.
  topo::VultrScenario scenario = topo::make_vultr_scenario();
  sim::Wan wan{scenario.topo, sim::Rng{/*seed=*/2022}};

  // 2. One Tango node per edge network.  Clocks are deliberately out of
  //    sync — Tango only ever compares paths against each other.
  core::TangoNode la{scenario.topo, wan,
                     core::NodeConfig{.router = kServerLa,
                                      .host_prefix = scenario.plan.la_hosts,
                                      .tunnel_prefix_pool = {scenario.plan.la_tunnel.begin(),
                                                             scenario.plan.la_tunnel.end()},
                                      .edge_asns = {kAsnVultr, kAsnServerLa},
                                      .clock = sim::NodeClock{+2 * sim::kMillisecond}}};
  core::TangoNode ny{scenario.topo, wan,
                     core::NodeConfig{.router = kServerNy,
                                      .host_prefix = scenario.plan.ny_hosts,
                                      .tunnel_prefix_pool = {scenario.plan.ny_tunnel.begin(),
                                                             scenario.plan.ny_tunnel.end()},
                                      .edge_asns = {kAsnVultr, kAsnServerNy},
                                      .clock = sim::NodeClock{-1 * sim::kMillisecond}}};

  // 3. Pair them: both directions run the community-suppression discovery.
  core::TangoPairing pairing{wan, la, ny};
  auto [la_paths, ny_paths] = pairing.establish();
  std::printf("discovered %zu paths LA->NY, %zu paths NY->LA:\n", la_paths.paths.size(),
              ny_paths.paths.size());
  for (const core::DiscoveredPath& p : la_paths.paths) {
    std::printf("  LA->NY %s\n", p.to_string().c_str());
  }

  // 4. Adaptive routing: hysteresis policy on both senders, measurement
  //    probes at the paper's 10 ms cadence, cooperative feedback on.
  la.set_policy(std::make_unique<core::HysteresisPolicy>(/*margin_ms=*/1.0));
  ny.set_policy(std::make_unique<core::HysteresisPolicy>(1.0));
  pairing.start();
  la.start_probing(10 * sim::kMillisecond);
  ny.start_probing(10 * sim::kMillisecond);

  // 5. Application traffic LA -> NY while the system converges onto the
  //    best path.
  std::uint64_t delivered = 0;
  ny.dp().set_host_handler([&delivered](const net::Packet& inner,
                                        const std::optional<dataplane::ReceiveInfo>& info) {
    if (!info) return;
    // Measurement probes share the tunnels with application traffic; count
    // only the application flow (dport 443).
    net::ByteReader r{inner.payload()};
    const auto udp = net::UdpHeader::parse(r);
    if (udp && udp->dst_port == 443) ++delivered;
  });
  const std::vector<std::uint8_t> payload(256, 0x42);
  for (int i = 0; i < 2000; ++i) {
    wan.events().schedule_in(i * 5 * sim::kMillisecond, [&la, &ny, &payload]() {
      la.dp().send_from_host(net::make_udp_packet(la.host_address(1), ny.host_address(1),
                                                  40000, 443, payload));
    });
  }

  wan.events().run_until(10 * sim::kSecond);
  pairing.stop();
  la.stop_probing();
  ny.stop_probing();
  wan.events().run_all();

  // Read the telemetry: per-path one-way stats as the LA sender knows them.
  std::printf("\nLA sender's live view of its outbound paths (via NY's feedback):\n");
  telemetry::Table table{{"Path", "Label", "OWD EWMA (ms)", "Jitter (ms)", "Loss"}};
  for (core::PathId id : la.registry().ids()) {
    const core::PathReport* r = la.registry().report(id);
    const core::DiscoveredPath* p = la.registry().find(id);
    table.add_row({std::to_string(id), p->label,
                   r ? telemetry::fmt(r->owd_ewma_ms) : "-",
                   r ? telemetry::fmt(r->jitter_ms, 3) : "-",
                   r ? telemetry::fmt(100.0 * r->loss_rate, 3) + "%" : "-"});
  }
  std::printf("%s", table.render().c_str());

  const core::DiscoveredPath* active = la.registry().find(*la.dp().active_path(kServerNy));
  std::printf("\napplication packets delivered: %llu\n",
              static_cast<unsigned long long>(delivered));
  std::printf("LA's active path after convergence: %s (policy: %s, %llu switches)\n",
              active->label.c_str(), la.policy()->name().c_str(),
              static_cast<unsigned long long>(la.path_switches()));
  std::printf("\nTango is running: both edges now see, and steer across, four wide-area"
              "\npaths that plain BGP reduced to one.\n");
  return 0;
}
